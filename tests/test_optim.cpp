#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "nn/linear.hpp"
#include "nn/optim.hpp"
#include "tensor/ops.hpp"

namespace rn = readys::nn;
namespace rt = readys::tensor;
using readys::util::Rng;

namespace {

/// Minimizes f(w) = ||w - target||^2 with the given optimizer factory and
/// returns the final distance to the optimum.
template <typename MakeOpt>
double optimize_quadratic(MakeOpt make_opt, int steps) {
  rt::Var w(rt::Tensor(1, 4, 0.0), true);
  rt::Var target(rt::Tensor::from_rows({{1.0, -2.0, 3.0, 0.5}}));
  auto opt = make_opt(std::vector<rt::Var>{w});
  for (int i = 0; i < steps; ++i) {
    opt->zero_grad();
    rt::mse(w, target).backward();
    opt->step();
  }
  double dist = 0.0;
  for (std::size_t i = 0; i < 4; ++i) {
    dist += std::pow(w.value()[i] - target.value()[i], 2.0);
  }
  return std::sqrt(dist);
}

}  // namespace

TEST(Sgd, ConvergesOnQuadratic) {
  const double dist = optimize_quadratic(
      [](std::vector<rt::Var> p) {
        return std::make_unique<rn::Sgd>(std::move(p), 0.1);
      },
      500);
  EXPECT_LT(dist, 1e-6);
}

TEST(Sgd, MomentumConvergesFaster) {
  const double plain = optimize_quadratic(
      [](std::vector<rt::Var> p) {
        return std::make_unique<rn::Sgd>(std::move(p), 0.02);
      },
      50);
  const double momentum = optimize_quadratic(
      [](std::vector<rt::Var> p) {
        return std::make_unique<rn::Sgd>(std::move(p), 0.02, 0.9);
      },
      50);
  EXPECT_LT(momentum, plain);
}

TEST(Adam, ConvergesOnQuadratic) {
  const double dist = optimize_quadratic(
      [](std::vector<rt::Var> p) {
        return std::make_unique<rn::Adam>(std::move(p), 0.1);
      },
      400);
  EXPECT_LT(dist, 1e-4);
}

TEST(Adam, FirstStepHasLearningRateMagnitude) {
  // With bias correction, the very first Adam step is ~lr * sign(grad).
  rt::Var w(rt::Tensor(1, 1, 0.0), true);
  rn::Adam opt({w}, 0.01);
  rt::scale(w, 5.0).backward();
  opt.step();
  EXPECT_NEAR(w.value()[0], -0.01, 1e-6);
}

TEST(Optimizer, ClipGradNorm) {
  rt::Var w(rt::Tensor(1, 2, 0.0), true);
  rn::Sgd opt({w}, 0.1);
  // Force a known gradient of norm 5.
  rt::Var loss = rt::sum_all(
      rt::mul(w, rt::Var(rt::Tensor::from_rows({{3.0, 4.0}}))));
  loss.backward();
  const double norm = opt.clip_grad_norm(1.0);
  EXPECT_NEAR(norm, 5.0, 1e-12);
  EXPECT_NEAR(w.grad().norm(), 1.0, 1e-12);
  // Clipping below the threshold is a no-op.
  const double norm2 = opt.clip_grad_norm(10.0);
  EXPECT_NEAR(norm2, 1.0, 1e-12);
  EXPECT_NEAR(w.grad().norm(), 1.0, 1e-12);
}

TEST(Optimizer, GradsFiniteDetectsPoisonedGradients) {
  // The divergence guard in the trainers keys off these two signals:
  // grads_finite() and a non-finite clip_grad_norm() return.
  const double inf = std::numeric_limits<double>::infinity();
  const double nan = std::numeric_limits<double>::quiet_NaN();
  rt::Var w(rt::Tensor(1, 2, 1.0), true);
  rn::Sgd opt({w}, 0.1);

  rt::sum_all(w).backward();
  EXPECT_TRUE(opt.grads_finite());
  EXPECT_TRUE(std::isfinite(opt.clip_grad_norm(1.0)));

  opt.zero_grad();
  rt::sum_all(rt::mul(w, rt::Var(rt::Tensor::from_rows({{inf, 1.0}}))))
      .backward();
  EXPECT_FALSE(opt.grads_finite());
  EXPECT_FALSE(std::isfinite(opt.clip_grad_norm(1.0)));

  opt.zero_grad();
  rt::sum_all(rt::mul(w, rt::Var(rt::Tensor::from_rows({{nan, 1.0}}))))
      .backward();
  EXPECT_FALSE(opt.grads_finite());
  EXPECT_FALSE(std::isfinite(opt.clip_grad_norm(1.0)));

  // Dropping the poisoned batch restores health.
  opt.zero_grad();
  EXPECT_TRUE(opt.grads_finite());
}

namespace {

/// Runs `steps` quadratic-descent updates on `opt` whose single parameter
/// is `w`, mirroring optimize_quadratic but against a caller-owned Var so
/// two optimizers can be compared parameter-by-parameter.
void descend(rt::Var& w, rn::Optimizer& opt, int steps) {
  rt::Var target(rt::Tensor::from_rows({{1.0, -2.0, 3.0, 0.5}}));
  for (int i = 0; i < steps; ++i) {
    opt.zero_grad();
    rt::mse(w, target).backward();
    opt.step();
  }
}

}  // namespace

TEST(Adam, StateRowsRoundTripResumesExactTrajectory) {
  // Twin setup: optimizer A runs 10 steps; optimizer B starts fresh on a
  // copy of A's weights and loads A's rows. Both must then produce
  // bit-identical weights for every subsequent step — the checkpoint
  // resume invariant.
  rt::Var wa(rt::Tensor(1, 4, 0.0), true);
  rn::Adam a({wa}, 0.05);
  descend(wa, a, 10);

  rt::Var wb(rt::Tensor(wa.value()), true);
  rn::Adam b({wb}, 0.05);
  b.load_state_rows(a.state_rows());

  descend(wa, a, 25);
  descend(wb, b, 25);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(wa.value()[i], wb.value()[i]) << "index " << i;
  }
}

TEST(Adam, FreshResumeWithoutStateDiverges) {
  // Control for the round-trip test: skipping load_state_rows loses the
  // bias-correction step count and the moments, so trajectories differ.
  rt::Var wa(rt::Tensor(1, 4, 0.0), true);
  rn::Adam a({wa}, 0.05);
  descend(wa, a, 10);

  rt::Var wb(rt::Tensor(wa.value()), true);
  rn::Adam b({wb}, 0.05);  // no state loaded

  descend(wa, a, 5);
  descend(wb, b, 5);
  bool any_diff = false;
  for (std::size_t i = 0; i < 4; ++i) {
    if (wa.value()[i] != wb.value()[i]) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Sgd, StateRowsRoundTripResumesExactTrajectory) {
  rt::Var wa(rt::Tensor(1, 4, 0.0), true);
  rn::Sgd a({wa}, 0.02, 0.9);
  descend(wa, a, 10);

  rt::Var wb(rt::Tensor(wa.value()), true);
  rn::Sgd b({wb}, 0.02, 0.9);
  b.load_state_rows(a.state_rows());

  descend(wa, a, 25);
  descend(wb, b, 25);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(wa.value()[i], wb.value()[i]) << "index " << i;
  }
}

TEST(Optimizer, LoadStateRowsRejectsMalformedRowsWithoutApplying) {
  rt::Var w(rt::Tensor(1, 4, 0.0), true);
  rn::Adam opt({w}, 0.05);
  descend(w, opt, 5);
  const auto good = opt.state_rows();

  // Each corruption must throw and leave the live state untouched, which
  // we verify by checking state_rows() still matches the pre-load rows.
  std::vector<std::vector<std::string>> bad_cases;
  bad_cases.push_back({});                       // empty
  bad_cases.push_back({"sgd 0"});                // wrong optimizer tag
  auto truncated = good;
  truncated.pop_back();                          // missing tensor row
  bad_cases.push_back(truncated);
  auto garbled = good;
  garbled.back() += " 1.0";                      // trailing extra value
  bad_cases.push_back(garbled);

  for (const auto& rows : bad_cases) {
    EXPECT_THROW(opt.load_state_rows(rows), std::runtime_error);
    EXPECT_EQ(opt.state_rows(), good);
  }
}

TEST(Training, LinearLayerFitsLinearMap) {
  // End-to-end sanity: y = xA can be learned by a Linear layer.
  Rng rng(3);
  rn::Linear layer(2, 2, rng);
  rn::Adam opt(layer.parameters(), 0.05);
  const rt::Tensor a = rt::Tensor::from_rows({{2.0, -1.0}, {0.5, 3.0}});
  double last_loss = 0.0;
  for (int step = 0; step < 300; ++step) {
    rt::Tensor xv = rt::Tensor::randn(8, 2, rng);
    rt::Var x(xv);
    rt::Var target(rt::matmul_value(xv, a));
    opt.zero_grad();
    rt::Var loss = rt::mse(layer.forward(x), target);
    loss.backward();
    opt.step();
    last_loss = loss.value().item();
  }
  EXPECT_LT(last_loss, 1e-3);
}
