// Inference fast-path suite (`ctest -L infer`): the f32 SIMD kernels
// against double references, runtime ISA dispatch, the CSR adjacency,
// the InferenceBackend contract (f64ref bit-exactness, f32simd argmax
// agreement >= 99.9% with a logit-MAE bound across apps), the
// readys(backend=...) registry spec, and RunConfig's inference_backend
// field.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <vector>

#include "cluster/register.hpp"
#include "core/run_config.hpp"
#include "dag/cholesky.hpp"
#include "dag/lu.hpp"
#include "dag/qr.hpp"
#include "nn/gcn.hpp"
#include "rl/env.hpp"
#include "rl/inference.hpp"
#include "rl/policy_net.hpp"
#include "rl/readys_scheduler.hpp"
#include "sched/scheduler.hpp"
#include "sched/spec.hpp"
#include "sim/simulator.hpp"
#include "tensor/arena.hpp"
#include "tensor/f32.hpp"
#include "util/rng.hpp"

namespace rd = readys::dag;
namespace rn = readys::nn;
namespace rr = readys::rl;
namespace rs = readys::sim;
namespace rt = readys::tensor;
namespace rx = readys::sched;
namespace f32 = readys::tensor::f32;

namespace {

std::vector<float> random_floats(std::size_t n, std::uint64_t seed) {
  readys::util::Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.uniform() * 2.0 - 1.0);
  return v;
}

/// Double-precision reference for matmul_bias over the same floats.
std::vector<double> matmul_ref(const std::vector<float>& a, std::size_t m,
                               std::size_t k, const std::vector<float>& b,
                               std::size_t n, const float* bias) {
  std::vector<double> c(m * n, 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double acc = bias != nullptr ? static_cast<double>(bias[j]) : 0.0;
      for (std::size_t l = 0; l < k; ++l) {
        acc += static_cast<double>(a[i * k + l]) *
               static_cast<double>(b[l * n + j]);
      }
      c[i * n + j] = acc;
    }
  }
  return c;
}

rr::PolicyNet make_net(int hidden, std::uint64_t seed,
                       int window = 2) {
  rr::AgentConfig cfg;
  cfg.hidden = hidden;
  cfg.seed = seed;
  cfg.window = window;
  return rr::PolicyNet(rr::StateEncoder::node_feature_width(4),
                       rr::StateEncoder::kResourceFeatureWidth, cfg);
}

/// Harvests observations from a uniformly random rollout.
std::vector<rr::Observation> harvest(const rd::TaskGraph& graph,
                                     std::uint64_t seed, int window = 2) {
  const auto platform = rs::Platform::hybrid(2, 2);
  const auto costs = rs::CostModel::cholesky();
  rr::SchedulingEnv env(graph, platform, costs, {0.3, window, seed});
  readys::util::Rng rng(seed * 7919 + 13);
  env.reset(seed);
  std::vector<rr::Observation> out;
  bool done = env.done();
  while (!done) {
    const rr::Observation& obs = env.observation();
    out.push_back(obs);
    done = env.step(rng.uniform_index(obs.num_actions())).done;
  }
  return out;
}

}  // namespace

// --- f32 kernels ----------------------------------------------------------

TEST(F32Kernels, MatmulBiasMatchesDoubleReference) {
  const std::size_t m = 13, k = 17, n = 19;
  const auto a = random_floats(m * k, 1);
  const auto b = random_floats(k * n, 2);
  const auto bias = random_floats(n, 3);
  std::vector<float> c(m * n);
  f32::matmul_bias(a.data(), m, k, b.data(), n, bias.data(), c.data());
  const auto ref = matmul_ref(a, m, k, b, n, bias.data());
  for (std::size_t i = 0; i < m * n; ++i) {
    EXPECT_NEAR(static_cast<double>(c[i]), ref[i], 1e-4) << "at " << i;
  }
}

TEST(F32Kernels, MatmulNoBiasAndZeroRowsSkipConsistently) {
  const std::size_t m = 9, k = 24, n = 16;
  auto a = random_floats(m * k, 4);
  for (std::size_t i = 0; i < m * k; i += 3) a[i] = 0.0f;  // sparsify
  const auto b = random_floats(k * n, 5);
  std::vector<float> c(m * n);
  f32::matmul_bias(a.data(), m, k, b.data(), n, nullptr, c.data());
  const auto ref = matmul_ref(a, m, k, b, n, nullptr);
  for (std::size_t i = 0; i < m * n; ++i) {
    EXPECT_NEAR(static_cast<double>(c[i]), ref[i], 1e-4);
  }
}

TEST(F32Kernels, SpmmMatchesDenseMatmulBitForBit) {
  // A 6-node path graph's normalized adjacency, densified by hand: the
  // CSR product must reproduce the zero-skipping dense product exactly
  // (same terms, same ascending order).
  const std::size_t n = 6, h = 11;
  std::vector<std::pair<std::size_t, std::size_t>> edges;
  for (std::size_t i = 0; i + 1 < n; ++i) edges.push_back({i, i + 1});
  const rt::Tensor dense = rn::normalized_adjacency(n, edges);
  rn::SparseAdj csr;
  rn::normalized_adjacency_csr(n, edges, csr);

  std::vector<float> dense_f(n * n);
  for (std::size_t i = 0; i < n * n; ++i) {
    dense_f[i] = static_cast<float>(dense[i]);
  }
  const auto x = random_floats(n * h, 6);
  const auto bias = random_floats(h, 7);
  std::vector<float> c_dense(n * h), c_csr(n * h);
  f32::matmul_bias(dense_f.data(), n, n, x.data(), h, bias.data(),
                   c_dense.data());
  f32::spmm_bias(csr.row_ptr.data(), csr.col.data(), csr.val.data(), n,
                 x.data(), h, bias.data(), c_csr.data());
  for (std::size_t i = 0; i < n * h; ++i) {
    EXPECT_EQ(c_csr[i], c_dense[i]) << "at " << i;
  }
}

TEST(F32Kernels, PoolingAndDotKnownAnswers) {
  const float x[6] = {1.0f, -2.0f, 3.0f, 5.0f, 4.0f, -6.0f};  // 2 x 3
  float mean[3], mx[3];
  f32::mean_cols(x, 2, 3, mean);
  f32::max_cols(x, 2, 3, mx);
  EXPECT_FLOAT_EQ(mean[0], 3.0f);
  EXPECT_FLOAT_EQ(mean[1], 1.0f);
  EXPECT_FLOAT_EQ(mean[2], -1.5f);
  EXPECT_FLOAT_EQ(mx[0], 5.0f);
  EXPECT_FLOAT_EQ(mx[1], 4.0f);
  EXPECT_FLOAT_EQ(mx[2], 3.0f);

  const float a[4] = {1.0f, 2.0f, 3.0f, 4.0f};
  const float b[4] = {4.0f, 3.0f, 2.0f, 1.0f};
  EXPECT_FLOAT_EQ(f32::dot(a, b, 4), 20.0f);

  float r[4] = {-1.0f, 0.0f, 2.0f, -0.5f};
  f32::relu_inplace(r, 4);
  EXPECT_FLOAT_EQ(r[0], 0.0f);
  EXPECT_FLOAT_EQ(r[2], 2.0f);
  EXPECT_FLOAT_EQ(r[3], 0.0f);
}

// --- ISA dispatch ---------------------------------------------------------

TEST(F32Dispatch, IsaQueriesAreCoherent) {
  if (!f32::avx2_compiled()) {
    EXPECT_FALSE(f32::avx2_available());
    EXPECT_EQ(f32::active_isa(), f32::Isa::kScalar);
  }
  if (!f32::avx2_available()) {
    EXPECT_EQ(f32::active_isa(), f32::Isa::kScalar);
  }
  EXPECT_STREQ(f32::isa_name(f32::Isa::kScalar), "scalar");
  EXPECT_STREQ(f32::isa_name(f32::Isa::kAvx2), "avx2");
}

TEST(F32Dispatch, ForceScalarTakesEffectAndAgreesWithSimd) {
  // Whatever the host supports, both paths must run without faulting and
  // agree to FMA-contraction tolerance. On a non-AVX2 host this
  // degenerates to scalar twice — still a valid dispatch check.
  const std::size_t m = 7, k = 33, n = 12;
  const auto a = random_floats(m * k, 8);
  const auto b = random_floats(k * n, 9);
  std::vector<float> c_auto(m * n), c_scalar(m * n);

  f32::matmul_bias(a.data(), m, k, b.data(), n, nullptr, c_auto.data());
  f32::force_scalar(true);
  EXPECT_EQ(f32::active_isa(), f32::Isa::kScalar);
  f32::matmul_bias(a.data(), m, k, b.data(), n, nullptr, c_scalar.data());
  f32::force_scalar(false);
  if (f32::avx2_available()) {
    EXPECT_EQ(f32::active_isa(), f32::Isa::kAvx2);
  }
  for (std::size_t i = 0; i < m * n; ++i) {
    EXPECT_NEAR(c_auto[i], c_scalar[i], 1e-4f);
  }
}

// --- CSR adjacency --------------------------------------------------------

TEST(SparseAdj, CsrMatchesDenseBitForBitWithAscendingColumns) {
  const auto graph = rd::cholesky_graph(4);
  const auto obs_list = harvest(graph, 3);
  ASSERT_FALSE(obs_list.empty());
  for (const rr::Observation& obs : obs_list) {
    const std::size_t n = obs.window.size();
    ASSERT_EQ(obs.ahat_csr.rows(), n);
    std::size_t nnz = 0;
    for (std::size_t i = 0; i < n; ++i) {
      std::size_t prev_col = 0;
      bool first = true;
      for (std::size_t p = obs.ahat_csr.row_ptr[i];
           p < obs.ahat_csr.row_ptr[i + 1]; ++p) {
        const std::size_t j = obs.ahat_csr.col[p];
        if (!first) EXPECT_GT(j, prev_col) << "columns must ascend";
        first = false;
        prev_col = j;
        // Stored value is the dense entry, bit for bit.
        EXPECT_EQ(obs.ahat_csr.val[p], obs.ahat.at(i, j));
        EXPECT_NE(obs.ahat.at(i, j), 0.0);
        ++nnz;
      }
    }
    // Every dense nonzero is present: counts must match.
    std::size_t dense_nnz = 0;
    for (std::size_t i = 0; i < n * n; ++i) {
      if (obs.ahat[i] != 0.0) ++dense_nnz;
    }
    EXPECT_EQ(nnz, dense_nnz);
  }
}

// --- backend construction and parsing -------------------------------------

TEST(InferenceBackend, ParseAndNameRoundTrip) {
  EXPECT_EQ(rr::parse_inference_backend("f64ref"),
            rr::InferenceBackendKind::kF64Ref);
  EXPECT_EQ(rr::parse_inference_backend("f32simd"),
            rr::InferenceBackendKind::kF32Simd);
  EXPECT_STREQ(rr::inference_backend_name(rr::InferenceBackendKind::kF64Ref),
               "f64ref");
  EXPECT_STREQ(rr::inference_backend_name(rr::InferenceBackendKind::kF32Simd),
               "f32simd");
  try {
    rr::parse_inference_backend("f16");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("f64ref, f32simd"),
              std::string::npos);
  }
}

TEST(InferenceBackend, SnapshotDescribesTheArchitecture) {
  const auto net = make_net(16, 11);
  const auto w = rr::InferenceWeights::snapshot(net);
  EXPECT_EQ(w.hidden, 16);
  EXPECT_EQ(w.node_features, rr::StateEncoder::node_feature_width(4));
  EXPECT_EQ(w.resource_features, rr::StateEncoder::kResourceFeatureWidth);
  ASSERT_EQ(w.gcn_w.size(), w.gcn_in.size());
  ASSERT_FALSE(w.gcn_w.empty());
  EXPECT_EQ(w.gcn_in.front(), static_cast<std::size_t>(w.node_features));
  for (std::size_t l = 0; l < w.gcn_w.size(); ++l) {
    EXPECT_EQ(w.gcn_w[l].size(), w.gcn_in[l] * 16u);
    EXPECT_EQ(w.gcn_b[l].size(), 16u);
  }
  EXPECT_EQ(w.actor_w.size(), 16u);
  EXPECT_EQ(w.idle_w.size(), 32u);
  // Weight snapshots freeze at construction: the f32 backend keeps its
  // own copy of the parameters, independent of the source net.
  const rr::F32SimdBackend backend{rr::InferenceWeights::snapshot(net)};
  EXPECT_EQ(backend.weights().hidden, 16);
}

TEST(InferenceBackend, F64RefIsBitExactWithPolicyNetForward) {
  const auto net = make_net(24, 5);
  const auto backend = net.make_inference(rr::InferenceBackendKind::kF64Ref);
  EXPECT_STREQ(backend->name(), "f64ref");
  const auto obs_list = harvest(rd::cholesky_graph(4), 2);
  rr::InferenceOutput out;
  for (const rr::Observation& obs : obs_list) {
    backend->forward(obs, out);
    const auto ref = net.forward(obs);
    const rt::Tensor& p = ref.probs.value();
    const rt::Tensor& lp = ref.log_probs.value();
    ASSERT_EQ(out.probs.size(), p.size());
    for (std::size_t i = 0; i < p.size(); ++i) {
      EXPECT_EQ(out.probs[i], p[i]);
      EXPECT_EQ(out.log_probs[i], lp[i]);
    }
    EXPECT_EQ(out.value, ref.value.value().item());
  }
}

TEST(InferenceBackend, F32SimdAgreesWithReferenceWithinTolerance) {
  const auto net = make_net(32, 7);
  const auto f64 = net.make_inference(rr::InferenceBackendKind::kF64Ref);
  const auto f32b = net.make_inference(rr::InferenceBackendKind::kF32Simd);
  EXPECT_STREQ(f32b->name(), "f32simd");
  const auto obs_list = harvest(rd::cholesky_graph(5), 4);
  rr::InferenceOutput a, b;
  for (const rr::Observation& obs : obs_list) {
    f64->forward(obs, a);
    f32b->forward(obs, b);
    ASSERT_EQ(a.probs.size(), b.probs.size());
    double psum = 0.0;
    for (std::size_t i = 0; i < a.probs.size(); ++i) {
      EXPECT_NEAR(a.probs[i], b.probs[i], 1e-4);
      EXPECT_NEAR(a.log_probs[i], b.log_probs[i], 1e-3);
      psum += b.probs[i];
    }
    EXPECT_NEAR(psum, 1.0, 1e-9);  // softmax normalizes in double
    EXPECT_NEAR(a.value, b.value, 1e-3);
  }
}

TEST(InferenceBackend, ArgmaxAgreementAndLogitMaePinnedAcrossApps) {
  // The acceptance pin: >= 99.9% same-argmax decisions and a bounded
  // mean absolute log-prob gap, across Cholesky / LU / QR windows and
  // several weight seeds.
  std::size_t decisions = 0, agreed = 0;
  double abs_gap = 0.0;
  std::size_t gap_terms = 0;
  const rd::TaskGraph graphs[] = {rd::cholesky_graph(5), rd::lu_graph(5),
                                  rd::qr_graph(4)};
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const auto net = make_net(32, seed * 101);
    const auto f64 = net.make_inference(rr::InferenceBackendKind::kF64Ref);
    const auto f32b = net.make_inference(rr::InferenceBackendKind::kF32Simd);
    rr::InferenceOutput a, b;
    for (const auto& graph : graphs) {
      for (const rr::Observation& obs : harvest(graph, seed)) {
        f64->forward(obs, a);
        f32b->forward(obs, b);
        std::size_t ia = 0, ib = 0;
        for (std::size_t i = 1; i < a.probs.size(); ++i) {
          if (a.probs[i] > a.probs[ia]) ia = i;
          if (b.probs[i] > b.probs[ib]) ib = i;
        }
        ++decisions;
        if (ia == ib) ++agreed;
        for (std::size_t i = 0; i < a.log_probs.size(); ++i) {
          abs_gap += std::abs(a.log_probs[i] - b.log_probs[i]);
          ++gap_terms;
        }
      }
    }
  }
  ASSERT_GT(decisions, 500u) << "harvest too small to pin 99.9%";
  const double agreement =
      static_cast<double>(agreed) / static_cast<double>(decisions);
  EXPECT_GE(agreement, 0.999) << agreed << "/" << decisions;
  EXPECT_LT(abs_gap / static_cast<double>(gap_terms), 1e-4);
}

TEST(InferenceBackend, BatchedMatchesSingleBitForBit) {
  const auto net = make_net(16, 9);
  const auto obs_list = harvest(rd::cholesky_graph(4), 6);
  ASSERT_GE(obs_list.size(), 4u);
  std::vector<const rr::Observation*> batch;
  for (std::size_t i = 0; i < 4; ++i) batch.push_back(&obs_list[i]);
  for (const auto kind : {rr::InferenceBackendKind::kF64Ref,
                          rr::InferenceBackendKind::kF32Simd}) {
    const auto backend = net.make_inference(kind);
    std::vector<rr::InferenceOutput> outs;
    backend->forward_batched(batch, outs);
    ASSERT_EQ(outs.size(), batch.size());
    rr::InferenceOutput single;
    for (std::size_t g = 0; g < batch.size(); ++g) {
      backend->forward(*batch[g], single);
      ASSERT_EQ(outs[g].probs.size(), single.probs.size());
      for (std::size_t i = 0; i < single.probs.size(); ++i) {
        EXPECT_EQ(outs[g].probs[i], single.probs[i]);
        EXPECT_EQ(outs[g].log_probs[i], single.log_probs[i]);
      }
      EXPECT_EQ(outs[g].value, single.value);
    }
  }
}

TEST(InferenceBackend, RejectsDegenerateObservations) {
  const auto net = make_net(16, 3);
  rr::InferenceOutput out;
  for (const auto kind : {rr::InferenceBackendKind::kF64Ref,
                          rr::InferenceBackendKind::kF32Simd}) {
    const auto backend = net.make_inference(kind);
    rr::Observation empty;
    EXPECT_THROW(backend->forward(empty, out), std::invalid_argument);
    std::vector<const rr::Observation*> none;
    std::vector<rr::InferenceOutput> outs;
    EXPECT_THROW(backend->forward_batched(none, outs), std::invalid_argument);
  }
  // Wrong feature width: an observation from a different encoder config.
  const auto obs_list = harvest(rd::cholesky_graph(4), 1);
  rr::Observation bad = obs_list.front();
  bad.features = rt::Tensor(bad.window.size(), 3);
  const auto f32b = net.make_inference(rr::InferenceBackendKind::kF32Simd);
  EXPECT_THROW(f32b->forward(bad, out), std::invalid_argument);
}

// --- arena ----------------------------------------------------------------

TEST(Arena, ReusesCapacityAcrossResets) {
  rt::Arena arena;
  float* a = arena.alloc_f32(1000);
  ASSERT_NE(a, nullptr);
  a[999] = 1.0f;
  arena.reset();
  float* b = arena.alloc_f32(1000);
  EXPECT_EQ(a, b) << "reset must keep capacity, not free it";
  // Alignment suitable for 8-wide AVX2 loads.
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % 32u, 0u);
}

// --- registry spec --------------------------------------------------------

TEST(BaseSpec, GrammarMatchesAndRejects) {
  auto p = rx::parse_base_spec("readys", "readys");
  EXPECT_TRUE(p.matched);
  EXPECT_TRUE(p.error.empty());
  EXPECT_TRUE(p.spec.items.empty());
  EXPECT_TRUE(p.spec.inner.empty());

  p = rx::parse_base_spec("readys(backend=f32simd,incremental=0)", "readys");
  ASSERT_TRUE(p.matched);
  EXPECT_TRUE(p.error.empty());
  ASSERT_EQ(p.spec.items.size(), 2u);
  EXPECT_EQ(p.spec.items[0].first, "backend");
  EXPECT_EQ(p.spec.items[0].second, "f32simd");
  EXPECT_EQ(p.spec.items[1].first, "incremental");

  EXPECT_FALSE(rx::parse_base_spec("readysx", "readys").matched);
  EXPECT_FALSE(rx::parse_base_spec("heft", "readys").matched);
  EXPECT_FALSE(rx::parse_base_spec("read", "readys").matched);

  p = rx::parse_base_spec("readys(backend=f32simd", "readys");
  EXPECT_TRUE(p.matched);
  EXPECT_FALSE(p.error.empty()) << "missing ')' must be a syntax error";

  p = rx::parse_base_spec("readys(a=1)junk", "readys");
  EXPECT_TRUE(p.matched);
  EXPECT_FALSE(p.error.empty()) << "trailing characters must be an error";
}

TEST(ReadysSpec, RegistryResolvesBackendsAndComposesWithPrefixes) {
  const auto net = make_net(16, 21);
  rr::register_readys_scheduler(net, /*window=*/1);
  auto& reg = rx::registry();
  EXPECT_TRUE(reg.contains("readys"));
  EXPECT_TRUE(reg.contains("readys(backend=f32simd)"));
  EXPECT_TRUE(reg.contains("readys(backend=f64ref,incremental=0)"));
  EXPECT_FALSE(reg.contains("readys(backend=f16)"));
  EXPECT_FALSE(reg.contains("readys(bogus=1)"));
  EXPECT_TRUE(reg.contains("guarded:readys"));
  readys::cluster::register_cluster_scheduler();
  EXPECT_TRUE(reg.contains("shard(shards=2):readys(backend=f32simd)"));

  const auto names = reg.names();
  EXPECT_NE(std::find(names.begin(), names.end(), "readys"), names.end());

  try {
    (void)reg.make("readys(bogus=1)");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("backend, incremental"),
              std::string::npos);
  }

  // Spec-configured construction runs end to end, and the two encoders
  // land the identical schedule under the bit-exact f64ref backend.
  const auto graph = rd::cholesky_graph(4);
  const auto costs = rs::CostModel::cholesky();
  const auto platform = rs::Platform::hybrid(2, 2);
  auto full = reg.make("readys(incremental=0)", {.seed = 3});
  auto inc = reg.make("readys(incremental=1)", {.seed = 3});
  const double mk_full =
      rs::simulate_makespan(graph, platform, costs, *full, 0.2, 11);
  const double mk_inc =
      rs::simulate_makespan(graph, platform, costs, *inc, 0.2, 11);
  EXPECT_EQ(mk_full, mk_inc);

  auto fast = reg.make("readys(backend=f32simd)", {.seed = 3});
  const double mk_fast =
      rs::simulate_makespan(graph, platform, costs, *fast, 0.2, 11);
  EXPECT_TRUE(std::isfinite(mk_fast));
  EXPECT_GT(mk_fast, 0.0);
}

TEST(ReadysSpec, DefaultsThreadThroughPlainName) {
  const auto net = make_net(16, 22);
  rr::ReadysOptions defaults;
  defaults.backend = rr::InferenceBackendKind::kF32Simd;
  rr::register_readys_scheduler(net, /*window=*/1, /*random_offer=*/false,
                                defaults);
  // Plain "readys" now runs the f32 backend; it must still schedule.
  auto s = rx::make_scheduler("readys", {.seed = 1});
  const auto graph = rd::cholesky_graph(3);
  const double mk = rs::simulate_makespan(graph, rs::Platform::hybrid(2, 2),
                                          rs::CostModel::cholesky(), *s, 0.0,
                                          1);
  EXPECT_GT(mk, 0.0);
  // Restore the f64ref default for any test running after this one.
  rr::register_readys_scheduler(net, /*window=*/1);
}

// --- RunConfig ------------------------------------------------------------

TEST(RunConfigInference, RoundTripValidateAndEnvOverlay) {
  readys::core::RunConfig cfg;
  EXPECT_EQ(cfg.inference_backend, "f64ref");
  cfg.inference_backend = "f32simd";
  cfg.validate();
  const auto back = readys::core::RunConfig::from_json(cfg.to_json());
  EXPECT_EQ(back.inference_backend, "f32simd");

  readys::core::RunConfig bad;
  bad.inference_backend = "f128";
  EXPECT_THROW(bad.validate(), std::invalid_argument);

  ::setenv("READYS_INFERENCE_BACKEND", "f32simd", 1);
  const auto env_cfg = readys::core::RunConfig::from_env();
  ::unsetenv("READYS_INFERENCE_BACKEND");
  EXPECT_EQ(env_cfg.inference_backend, "f32simd");
}

// --- Snapshot reuse -------------------------------------------------------

// ReadysScheduler::reset() runs once per episode; a kF32Simd scheduler
// must NOT refreeze the weight snapshot every episode. The frozen
// InferenceWeights is rebuilt only when the net's weight version moves —
// optimizer step, deserialize_parameters, or copy_parameters_from.
TEST(InferenceBackend, SnapshotReusedAcrossResetsUntilWeightsChange) {
  auto net = make_net(16, 31);
  rr::ReadysOptions opts;
  opts.backend = rr::InferenceBackendKind::kF32Simd;
  opts.seed = 7;
  rr::ReadysScheduler sched(net, /*window=*/2, opts);
  const auto graph = rd::cholesky_graph(4);
  const auto platform = rs::Platform::hybrid(2, 2);
  const auto costs = rs::CostModel::cholesky();

  const std::uint64_t before = rr::InferenceWeights::snapshot_builds();
  (void)rs::simulate_makespan(graph, platform, costs, sched, 0.0, 1);
  EXPECT_EQ(rr::InferenceWeights::snapshot_builds(), before + 1);

  // Unchanged weights: later episodes reuse the frozen snapshot.
  (void)rs::simulate_makespan(graph, platform, costs, sched, 0.0, 1);
  (void)rs::simulate_makespan(graph, platform, costs, sched, 0.0, 1);
  EXPECT_EQ(rr::InferenceWeights::snapshot_builds(), before + 1);

  // A weight-version bump (what every mutation path performs) makes the
  // next reset refreeze exactly once.
  net.bump_weight_version();
  (void)rs::simulate_makespan(graph, platform, costs, sched, 0.0, 1);
  (void)rs::simulate_makespan(graph, platform, costs, sched, 0.0, 1);
  EXPECT_EQ(rr::InferenceWeights::snapshot_builds(), before + 2);

  // copy_parameters_from is one of those mutation paths.
  const auto donor = make_net(16, 32);
  net.copy_parameters_from(donor);
  (void)rs::simulate_makespan(graph, platform, costs, sched, 0.0, 1);
  EXPECT_EQ(rr::InferenceWeights::snapshot_builds(), before + 3);
}
