// Property tests over every scheduler x application x platform x noise
// combination: traces must always be valid schedules, makespans must
// respect lower bounds, and dynamic schedulers must not stall.

#include <gtest/gtest.h>

#include <limits>
#include <memory>

#include "core/apps.hpp"
#include "core/evaluation.hpp"
#include "dag/random_dag.hpp"
#include "sched/critical_path.hpp"
#include "sched/greedy_eft.hpp"
#include "sched/heft.hpp"
#include "sched/mct.hpp"
#include "sched/random_sched.hpp"
#include "sim/simulator.hpp"

namespace rc = readys::core;
namespace rd = readys::dag;
namespace rs = readys::sim;

namespace {

/// Lower bound at sigma = 0: the critical path priced at each task's
/// fastest resource, and the total work over all resources assuming every
/// task runs at its fastest.
double makespan_lower_bound(const rd::TaskGraph& g, const rs::Platform& p,
                            const rs::CostModel& c) {
  auto fastest = [&](rd::TaskId t) {
    double best = std::numeric_limits<double>::infinity();
    for (rs::ResourceId r = 0; r < p.size(); ++r) {
      best = std::min(best, c.expected(g, t, p, r));
    }
    return best;
  };
  std::vector<double> finish(g.num_tasks(), 0.0);
  double cp = 0.0;
  double work = 0.0;
  for (rd::TaskId t : g.topological_order()) {
    double ready = 0.0;
    for (rd::TaskId q : g.predecessors(t)) ready = std::max(ready, finish[q]);
    finish[t] = ready + fastest(t);
    cp = std::max(cp, finish[t]);
    work += fastest(t);
  }
  return std::max(cp, work / static_cast<double>(p.size()));
}

struct Combo {
  std::string scheduler;
  rc::App app;
  int tiles;
  int cpus;
  int gpus;
  double sigma;
};

void PrintTo(const Combo& c, std::ostream* os) {
  *os << c.scheduler << "_" << rc::app_name(c.app) << "_T" << c.tiles << "_"
      << c.cpus << "c" << c.gpus << "g_s" << c.sigma;
}

rc::SchedulerFactory factory_by_name(const std::string& name) {
  if (name == "heft") return rc::heft_factory();
  if (name == "mct") return rc::mct_factory();
  if (name == "random") return rc::random_factory();
  if (name == "greedy") return rc::greedy_eft_factory();
  return rc::critical_path_factory();
}

class SchedulerProperty : public ::testing::TestWithParam<Combo> {};

}  // namespace

TEST_P(SchedulerProperty, ProducesValidScheduleAboveLowerBound) {
  const Combo combo = GetParam();
  const auto g = rc::make_graph(combo.app, combo.tiles);
  const auto c = rc::make_costs(combo.app);
  const rs::Platform p = rs::Platform::hybrid(combo.cpus, combo.gpus);
  auto scheduler = factory_by_name(combo.scheduler)(17);
  rs::Simulator sim(g, p, c, {combo.sigma, 17});
  const auto result = sim.run(*scheduler);
  ASSERT_EQ(result.trace.validate(g, p), "");
  EXPECT_EQ(result.trace.size(), g.num_tasks());
  if (combo.sigma == 0.0) {
    EXPECT_GE(result.makespan, makespan_lower_bound(g, p, c) - 1e-9);
  } else {
    EXPECT_GT(result.makespan, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SchedulerProperty, ::testing::ValuesIn([] {
      std::vector<Combo> combos;
      for (const std::string& s :
           {"heft", "mct", "random", "greedy", "cp"}) {
        for (rc::App app :
             {rc::App::kCholesky, rc::App::kLu, rc::App::kQr}) {
          for (int tiles : {2, 5}) {
            for (auto [cpus, gpus] :
                 {std::pair{3, 0}, std::pair{2, 2}, std::pair{0, 3}}) {
              for (double sigma : {0.0, 0.5}) {
                combos.push_back({s, app, tiles, cpus, gpus, sigma});
              }
            }
          }
        }
      }
      return combos;
    }()));

TEST(SchedulerProperty, RandomLayeredDagsAllSchedulersValid) {
  readys::util::Rng rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    rd::RandomDagConfig cfg;
    cfg.layers = 3 + static_cast<int>(rng.uniform_index(4));
    cfg.width = 2 + static_cast<int>(rng.uniform_index(5));
    cfg.edge_density = rng.uniform(0.2, 0.9);
    const auto g = rd::random_layered_dag(cfg, rng);
    const auto c = rs::CostModel::uniform(cfg.kernel_types, 10.0, 3.0);
    const auto p = rs::Platform::hybrid(2, 1);
    for (const std::string& s : {"heft", "mct", "random", "greedy", "cp"}) {
      auto scheduler = factory_by_name(s)(trial);
      rs::Simulator sim(g, p, c, {0.3, static_cast<std::uint64_t>(trial)});
      const auto result = sim.run(*scheduler);
      EXPECT_EQ(result.trace.validate(g, p), "")
          << s << " trial " << trial;
    }
  }
}

TEST(SchedulerProperty, HeftBeatsRandomOnAverage) {
  const auto g = rc::make_graph(rc::App::kCholesky, 6);
  const auto c = rc::make_costs(rc::App::kCholesky);
  const auto p = rs::Platform::hybrid(2, 2);
  const auto heft = rc::evaluate_makespans(g, p, c, rc::heft_factory(), 0.0,
                                           1, 1);
  const auto rnd = rc::evaluate_makespans(g, p, c, rc::random_factory(), 0.0,
                                          10, 1);
  EXPECT_LT(heft.front(), readys::util::mean(rnd));
}

TEST(SchedulerProperty, EvaluationIsThreadSafe) {
  const auto g = rc::make_graph(rc::App::kLu, 5);
  const auto c = rc::make_costs(rc::App::kLu);
  const auto p = rs::Platform::hybrid(2, 2);
  readys::util::ThreadPool pool(4);
  const auto serial = rc::evaluate_makespans(g, p, c, rc::mct_factory(), 0.4,
                                             16, 7, nullptr);
  const auto parallel = rc::evaluate_makespans(g, p, c, rc::mct_factory(),
                                               0.4, 16, 7, &pool);
  EXPECT_EQ(serial, parallel);  // per-run seeding makes this exact
}
