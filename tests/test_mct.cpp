#include <gtest/gtest.h>

#include "dag/cholesky.hpp"
#include "sched/mct.hpp"
#include "sim/simulator.hpp"

namespace rd = readys::dag;
namespace rs = readys::sim;
namespace rx = readys::sched;

TEST(Mct, SingleTaskPicksFastestResource) {
  rd::TaskGraph g("one", {"A"});
  g.add_task(0);
  const auto p = rs::Platform::hybrid(1, 1);
  const auto c = rs::CostModel::uniform(1, 10.0, 2.0);
  rx::MctScheduler sched;
  rs::Simulator sim(g, p, c, {0.0, 1});
  const auto result = sim.run(sched);
  EXPECT_DOUBLE_EQ(result.makespan, 2.0);
  EXPECT_EQ(result.trace.entries().front().resource, 1);
}

TEST(Mct, QueuesOnBusyFastResourceWhenWorthIt) {
  // Two independent tasks, GPU 4x faster: both should go to the GPU
  // (completion 2 + 2 = 4 < 8 on the CPU).
  rd::TaskGraph g("pair", {"A"});
  g.add_task(0);
  g.add_task(0);
  const auto p = rs::Platform::hybrid(1, 1);
  const auto c = rs::CostModel::uniform(1, 8.0, 2.0);
  rx::MctScheduler sched;
  rs::Simulator sim(g, p, c, {0.0, 1});
  const auto result = sim.run(sched);
  EXPECT_DOUBLE_EQ(result.makespan, 4.0);
  for (const auto& e : result.trace.entries()) {
    EXPECT_EQ(e.resource, 1);
  }
}

TEST(Mct, SpillsToSlowResourceWhenQueueTooLong) {
  // Two independent tasks, GPU only slightly faster: second task completes
  // sooner on the idle CPU (10) than queued behind the GPU (8+8=16).
  rd::TaskGraph g("pair", {"A"});
  g.add_task(0);
  g.add_task(0);
  const auto p = rs::Platform::hybrid(1, 1);
  const auto c = rs::CostModel::uniform(1, 10.0, 8.0);
  rx::MctScheduler sched;
  rs::Simulator sim(g, p, c, {0.0, 1});
  const auto result = sim.run(sched);
  EXPECT_DOUBLE_EQ(result.makespan, 10.0);
}

TEST(Mct, ValidTraceOnFactorizations) {
  for (int tiles : {2, 4, 6}) {
    const auto g = rd::cholesky_graph(tiles);
    const auto c = rs::CostModel::cholesky();
    for (const auto& p :
         {rs::Platform::cpus(2), rs::Platform::hybrid(2, 2)}) {
      rx::MctScheduler sched;
      rs::Simulator sim(g, p, c, {0.0, 1});
      const auto result = sim.run(sched);
      EXPECT_EQ(result.trace.validate(g, p), "") << "T=" << tiles;
    }
  }
}

TEST(Mct, DeterministicWithoutNoise) {
  const auto g = rd::cholesky_graph(6);
  const auto p = rs::Platform::hybrid(2, 2);
  const auto c = rs::CostModel::cholesky();
  rx::MctScheduler s1;
  rx::MctScheduler s2;
  const double m1 = rs::simulate_makespan(g, p, c, s1, 0.0, 1);
  const double m2 = rs::simulate_makespan(g, p, c, s2, 0.0, 99);
  EXPECT_DOUBLE_EQ(m1, m2);  // seed only affects noise, which is off
}

TEST(Mct, SchedulerObjectIsReusable) {
  const auto g = rd::cholesky_graph(4);
  const auto p = rs::Platform::hybrid(1, 1);
  const auto c = rs::CostModel::cholesky();
  rx::MctScheduler sched;
  const double m1 = rs::simulate_makespan(g, p, c, sched, 0.0, 1);
  const double m2 = rs::simulate_makespan(g, p, c, sched, 0.0, 1);
  EXPECT_DOUBLE_EQ(m1, m2);
}
