#include <gtest/gtest.h>

#include "dag/cholesky.hpp"
#include "sim/trace.hpp"

namespace rd = readys::dag;
namespace rs = readys::sim;

namespace {

rd::TaskGraph chain2() {
  rd::TaskGraph g("chain", {"A"});
  g.add_task(0);
  g.add_task(0);
  g.add_edge(0, 1);
  return g;
}

}  // namespace

TEST(Trace, MakespanAndUtilization) {
  rs::Trace t;
  t.add({0, 0, 0.0, 10.0});
  t.add({1, 1, 0.0, 5.0});
  EXPECT_DOUBLE_EQ(t.makespan(), 10.0);
  const auto util = t.utilization(rs::Platform::cpus(2));
  EXPECT_DOUBLE_EQ(util[0], 1.0);
  EXPECT_DOUBLE_EQ(util[1], 0.5);
}

TEST(Trace, ValidScheduleAccepted) {
  rs::Trace t;
  t.add({0, 0, 0.0, 10.0});
  t.add({1, 0, 10.0, 20.0});
  EXPECT_EQ(t.validate(chain2(), rs::Platform::cpus(1)), "");
}

TEST(Trace, MissingTaskRejected) {
  rs::Trace t;
  t.add({0, 0, 0.0, 10.0});
  EXPECT_NE(t.validate(chain2(), rs::Platform::cpus(1)), "");
}

TEST(Trace, DuplicateTaskRejected) {
  rs::Trace t;
  t.add({0, 0, 0.0, 10.0});
  t.add({0, 0, 10.0, 20.0});
  EXPECT_NE(t.validate(chain2(), rs::Platform::cpus(1)), "");
}

TEST(Trace, DependencyViolationRejected) {
  rs::Trace t;
  t.add({0, 0, 0.0, 10.0});
  t.add({1, 1, 5.0, 15.0});  // starts before predecessor finishes
  EXPECT_NE(t.validate(chain2(), rs::Platform::cpus(2)), "");
}

TEST(Trace, ResourceOverlapRejected) {
  rd::TaskGraph g("pair", {"A"});
  g.add_task(0);
  g.add_task(0);
  rs::Trace t;
  t.add({0, 0, 0.0, 10.0});
  t.add({1, 0, 5.0, 15.0});
  EXPECT_NE(t.validate(g, rs::Platform::cpus(1)), "");
}

TEST(Trace, UnknownResourceRejected) {
  rd::TaskGraph g("one", {"A"});
  g.add_task(0);
  rs::Trace t;
  t.add({0, 7, 0.0, 1.0});
  EXPECT_NE(t.validate(g, rs::Platform::cpus(1)), "");
}

TEST(Trace, NegativeDurationRejected) {
  rd::TaskGraph g("one", {"A"});
  g.add_task(0);
  rs::Trace t;
  t.add({0, 0, 5.0, 1.0});
  EXPECT_NE(t.validate(g, rs::Platform::cpus(1)), "");
}

TEST(Trace, ZeroDurationTasksAreValid) {
  // Truncated-Gaussian noise can produce zero-length tasks.
  rd::TaskGraph g("pair", {"A"});
  g.add_task(0);
  g.add_task(0);
  rs::Trace t;
  t.add({0, 0, 3.0, 3.0});
  t.add({1, 0, 3.0, 3.0});
  EXPECT_EQ(t.validate(g, rs::Platform::cpus(1)), "");
}
