// The reproduction keeps every paper-literal variant behind config
// switches (DESIGN.md "Training decisions"). These tests pin down that
// each variant stays functional, so the flags remain usable for
// ablations even though the defaults differ.

#include <gtest/gtest.h>

#include <algorithm>

#include "dag/cholesky.hpp"
#include "nn/serialize.hpp"
#include "rl/a2c.hpp"
#include "rl/agent.hpp"
#include "rl/readys_scheduler.hpp"
#include "sim/simulator.hpp"

namespace rd = readys::dag;
namespace rs = readys::sim;
namespace rr = readys::rl;

namespace {

rr::AgentConfig tiny() {
  rr::AgentConfig cfg;
  cfg.hidden = 12;
  cfg.gcn_layers = 1;
  cfg.window = 1;
  cfg.seed = 9;
  return cfg;
}

}  // namespace

TEST(ConfigVariants, CriticFlagChangesValueHeadShape) {
  auto base = tiny();
  base.critic_sees_resources = false;
  auto enriched = tiny();
  enriched.critic_sees_resources = true;
  rr::PolicyNet literal(rr::StateEncoder::node_feature_width(4), 8, base);
  rr::PolicyNet rich(rr::StateEncoder::node_feature_width(4), 8, enriched);
  // The enriched critic doubles the value head input.
  EXPECT_GT(rich.parameter_count(), literal.parameter_count());
  // Weights of one variant must not deserialize into the other.
  EXPECT_THROW(readys::nn::deserialize_parameters(
                   rich, readys::nn::serialize_parameters(literal)),
               std::runtime_error);
}

TEST(ConfigVariants, PaperLiteralTrainingStillRuns) {
  // The literal §V-D configuration: raw reward, constant entropy,
  // n-step unrolls, random processor offers.
  const auto graph = rd::cholesky_graph(3);
  const auto platform = rs::Platform::hybrid(1, 1);
  const auto costs = rs::CostModel::cholesky();
  auto cfg = tiny();
  cfg.squash_reward = false;
  cfg.reward_clip = 0.0;
  cfg.entropy_decay = false;
  cfg.unroll = 20;
  cfg.lr = 1e-2;
  rr::PolicyNet net(rr::StateEncoder::node_feature_width(4), 8, cfg);
  rr::A2CTrainer trainer(net, cfg);
  rr::SchedulingEnv env(graph, platform, costs,
                        {0.2, cfg.window, 1, /*random_offer=*/true});
  const auto report = trainer.train(env, {.episodes = 6, .sigma = 0.2});
  EXPECT_EQ(report.episode_rewards.size(), 6u);
  for (double mk : report.episode_makespans) EXPECT_GT(mk, 0.0);
}

TEST(ConfigVariants, RandomOfferSchedulerProducesValidTraces) {
  const auto graph = rd::cholesky_graph(4);
  const auto platform = rs::Platform::hybrid(2, 2);
  const auto costs = rs::CostModel::cholesky();
  rr::ReadysAgent agent(4, tiny());
  rr::ReadysScheduler sched(agent.net(), 1, /*greedy=*/false, /*seed=*/3,
                            /*random_offer=*/true);
  rs::Simulator sim(graph, platform, costs, {0.3, 5});
  const auto result = sim.run(sched);
  EXPECT_EQ(result.trace.validate(graph, platform), "");
}

TEST(ConfigVariants, RandomOfferSeedChangesOutcome) {
  const auto graph = rd::cholesky_graph(4);
  const auto platform = rs::Platform::hybrid(2, 2);
  const auto costs = rs::CostModel::cholesky();
  rr::ReadysAgent agent(4, tiny());
  // Same noise seed, different scheduler seeds: the random offers must
  // be able to change the schedule (sampled policy, untrained net).
  std::vector<double> mks;
  for (std::uint64_t s = 0; s < 6; ++s) {
    rr::ReadysScheduler sched(agent.net(), 1, false, s, true);
    rs::Simulator sim(graph, platform, costs, {0.0, 11});
    mks.push_back(sim.run(sched).makespan);
  }
  const bool all_equal =
      std::all_of(mks.begin(), mks.end(),
                  [&](double m) { return m == mks.front(); });
  EXPECT_FALSE(all_equal);
}

TEST(ConfigVariants, NormalizedAdvantageVariantRuns) {
  const auto graph = rd::cholesky_graph(3);
  const auto platform = rs::Platform::hybrid(1, 1);
  const auto costs = rs::CostModel::cholesky();
  auto cfg = tiny();
  cfg.normalize_advantage = true;
  rr::PolicyNet net(rr::StateEncoder::node_feature_width(4), 8, cfg);
  rr::A2CTrainer trainer(net, cfg);
  rr::SchedulingEnv env(graph, platform, costs, {0.0, cfg.window, 1});
  const auto report = trainer.train(env, {.episodes = 4});
  EXPECT_EQ(report.episode_rewards.size(), 4u);
}

TEST(ConfigVariants, WindowZeroAgentStillSchedules) {
  // w = 0: the agent sees only running + ready tasks (no descendants) —
  // the lower end of the paper's random-search range.
  const auto graph = rd::cholesky_graph(4);
  const auto platform = rs::Platform::hybrid(2, 2);
  const auto costs = rs::CostModel::cholesky();
  auto cfg = tiny();
  cfg.window = 0;
  rr::ReadysAgent agent(4, cfg);
  agent.train(graph, platform, costs, {.episodes = 3});
  const auto mks = agent.evaluate(graph, platform, costs, 0.0, 2, 5);
  for (double mk : mks) EXPECT_GT(mk, 0.0);
}
