#include <gtest/gtest.h>

#include "dag/cholesky.hpp"
#include "rl/ppo.hpp"
#include "util/stats.hpp"

namespace rd = readys::dag;
namespace rs = readys::sim;
namespace rr = readys::rl;

namespace {

rr::AgentConfig tiny_config() {
  rr::AgentConfig cfg;
  cfg.hidden = 16;
  cfg.gcn_layers = 1;
  cfg.window = 1;
  cfg.seed = 5;
  return cfg;
}

}  // namespace

TEST(Ppo, TrainingRunsAndReports) {
  const auto graph = rd::cholesky_graph(3);
  const auto platform = rs::Platform::hybrid(1, 1);
  const auto costs = rs::CostModel::cholesky();
  auto cfg = tiny_config();
  rr::PolicyNet net(rr::StateEncoder::node_feature_width(4), 8, cfg);
  rr::PpoTrainer trainer(net, cfg, {.rollout_episodes = 4, .epochs = 2});
  rr::SchedulingEnv env(graph, platform, costs, {0.0, cfg.window, 1});
  const auto report = trainer.train(env, {.episodes = 10});
  EXPECT_EQ(report.episode_rewards.size(), 10u);
  EXPECT_EQ(report.episode_makespans.size(), 10u);
  EXPECT_GE(report.updates, 2u);  // ceil(10 / 4) rounds
  EXPECT_GT(report.best_makespan, 0.0);
}

TEST(Ppo, TrainingChangesParameters) {
  const auto graph = rd::cholesky_graph(3);
  const auto platform = rs::Platform::hybrid(1, 1);
  const auto costs = rs::CostModel::cholesky();
  auto cfg = tiny_config();
  rr::PolicyNet net(rr::StateEncoder::node_feature_width(4), 8, cfg);
  std::vector<readys::tensor::Tensor> before;
  for (const auto& p : net.parameters()) before.push_back(p.value());
  rr::PpoTrainer trainer(net, cfg);
  rr::SchedulingEnv env(graph, platform, costs, {0.0, cfg.window, 1});
  trainer.train(env, {.episodes = 8});
  bool changed = false;
  const auto params = net.parameters();
  for (std::size_t i = 0; i < params.size(); ++i) {
    if (!(params[i].value() == before[i])) changed = true;
  }
  EXPECT_TRUE(changed);
}

TEST(Ppo, EvaluateGreedyIsDeterministic) {
  const auto graph = rd::cholesky_graph(3);
  const auto platform = rs::Platform::hybrid(1, 1);
  const auto costs = rs::CostModel::cholesky();
  auto cfg = tiny_config();
  rr::PolicyNet net(rr::StateEncoder::node_feature_width(4), 8, cfg);
  rr::PpoTrainer trainer(net, cfg);
  rr::SchedulingEnv env(graph, platform, costs, {0.0, cfg.window, 1});
  const auto a = trainer.evaluate(env, 3, 7, true);
  const auto b = trainer.evaluate(env, 3, 7, true);
  EXPECT_EQ(a, b);
}

TEST(Ppo, LearnsTinyInstance) {
  // Same smoke test as A2C: Cholesky T=2 on 1 CPU + 1 GPU should reach
  // HEFT level (all tasks on the GPU) within a modest budget.
  const auto graph = rd::cholesky_graph(2);
  const auto platform = rs::Platform::hybrid(1, 1);
  const auto costs = rs::CostModel::cholesky();
  auto cfg = tiny_config();
  cfg.entropy_beta = 1e-3;
  rr::PolicyNet net(rr::StateEncoder::node_feature_width(4), 8, cfg);
  rr::PpoTrainer trainer(net, cfg, {.rollout_episodes = 8, .epochs = 4});
  rr::SchedulingEnv env(graph, platform, costs, {0.0, cfg.window, 1});
  trainer.train(env, {.episodes = 250});
  const auto makespans = trainer.evaluate(env, 5, 1000, true);
  EXPECT_LE(readys::util::mean(makespans), env.heft_reference() * 1.05);
}

TEST(Ppo, SharesRewardShapingWithA2c) {
  auto cfg = tiny_config();
  EXPECT_DOUBLE_EQ(rr::shape_reward(cfg, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(rr::shape_reward(cfg, -1.0), -0.5);
  cfg.squash_reward = false;
  cfg.reward_clip = 0.0;
  EXPECT_DOUBLE_EQ(rr::shape_reward(cfg, -3.25), -3.25);
}
