#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "nn/mlp.hpp"
#include "nn/serialize.hpp"
#include "tensor/ops.hpp"

namespace rn = readys::nn;
namespace rt = readys::tensor;
using readys::util::Rng;

namespace {

std::filesystem::path temp_file(const char* name) {
  return std::filesystem::temp_directory_path() / name;
}

}  // namespace

TEST(Serialize, InMemoryRoundTripIsExact) {
  Rng rng1(1);
  Rng rng2(2);
  rn::Mlp a({4, 8, 2}, rng1);
  rn::Mlp b({4, 8, 2}, rng2);
  rn::deserialize_parameters(b, rn::serialize_parameters(a));
  auto pa = a.parameters();
  auto pb = b.parameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_TRUE(pa[i].value() == pb[i].value()) << "param " << i;
  }
}

TEST(Serialize, FileRoundTripPreservesForwardPass) {
  Rng rng1(3);
  Rng rng2(4);
  rn::Mlp a({5, 6, 1}, rng1);
  rn::Mlp b({5, 6, 1}, rng2);
  const auto path = temp_file("readys_test_weights.txt");
  rn::save_parameters(a, path.string());
  rn::load_parameters(b, path.string());
  std::filesystem::remove(path);

  rt::Tensor x = rt::Tensor::randn(3, 5, rng1);
  auto ya = a.forward(rt::Var(x)).value();
  auto yb = b.forward(rt::Var(x)).value();
  EXPECT_TRUE(ya == yb);
}

TEST(Serialize, ArchitectureMismatchThrows) {
  Rng rng(5);
  rn::Mlp a({4, 8, 2}, rng);
  rn::Mlp wrong_shape({4, 9, 2}, rng);
  rn::Mlp wrong_depth({4, 8, 8, 2}, rng);
  const std::string blob = rn::serialize_parameters(a);
  EXPECT_THROW(rn::deserialize_parameters(wrong_shape, blob),
               std::runtime_error);
  EXPECT_THROW(rn::deserialize_parameters(wrong_depth, blob),
               std::runtime_error);
}

TEST(Serialize, BadHeaderThrows) {
  Rng rng(6);
  rn::Mlp a({2, 2}, rng);
  EXPECT_THROW(rn::deserialize_parameters(a, "not-a-weights-file\n"),
               std::runtime_error);
}

TEST(Serialize, MissingFileThrows) {
  Rng rng(7);
  rn::Mlp a({2, 2}, rng);
  EXPECT_THROW(rn::load_parameters(a, "/nonexistent/readys.txt"),
               std::runtime_error);
  EXPECT_THROW(rn::save_parameters(a, "/nonexistent/readys.txt"),
               std::runtime_error);
}

TEST(Serialize, SaveIsAtomicAndLeavesNoTmp) {
  Rng rng(8);
  rn::Mlp a({3, 4, 1}, rng);
  const auto path = temp_file("readys_test_atomic.txt");
  const auto tmp = path.string() + ".tmp";
  // Plant a pre-existing file so the rename provably replaces it whole.
  rn::save_parameters(a, path.string());
  rn::save_parameters(a, path.string());
  EXPECT_FALSE(std::filesystem::exists(tmp));
  rn::Mlp b({3, 4, 1}, rng);
  rn::load_parameters(b, path.string());
  EXPECT_EQ(rn::serialize_parameters(a), rn::serialize_parameters(b));
  std::filesystem::remove(path);
}

TEST(Serialize, TruncatedDataErrorNamesParamShapeAndLine) {
  Rng rng(9);
  rn::Mlp m({2, 2}, rng);
  // A 1x2 parameter with only one value on its data line (line 3).
  const std::string blob = "readys-weights v1\nw 1 2\n0.5\n";
  try {
    rn::deserialize_parameters(m, blob);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("line 3"), std::string::npos) << msg;
    EXPECT_NE(msg.find("'w'"), std::string::npos) << msg;
    EXPECT_NE(msg.find("(1x2)"), std::string::npos) << msg;
    EXPECT_NE(msg.find("found 1"), std::string::npos) << msg;
  }
}

TEST(Serialize, ShapeMismatchErrorShowsExpectedVsFound) {
  Rng rng(10);
  rn::Mlp a({4, 8, 2}, rng);
  rn::Mlp wrong({4, 9, 2}, rng);
  try {
    rn::deserialize_parameters(wrong, rn::serialize_parameters(a));
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    // Names the parameter and both shapes.
    EXPECT_NE(msg.find("shape mismatch"), std::string::npos) << msg;
    EXPECT_NE(msg.find("module expects"), std::string::npos) << msg;
    EXPECT_NE(msg.find("file has"), std::string::npos) << msg;
    const auto named = wrong.named_parameters();
    ASSERT_FALSE(named.empty());
    bool names_some_param = false;
    for (const auto& [pname, var] : named) {
      names_some_param =
          names_some_param || msg.find("'" + pname + "'") != std::string::npos;
    }
    EXPECT_TRUE(names_some_param) << msg;
  }
}

TEST(Serialize, MalformedHeaderReportsLineNumber) {
  Rng rng(11);
  rn::Mlp m({2, 2}, rng);
  const std::string blob = "readys-weights v1\nnot a header\n";
  try {
    rn::deserialize_parameters(m, blob);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("line 2"), std::string::npos) << msg;
  }
}
