#include <gtest/gtest.h>

#include "dag/synthetic.hpp"
#include "sched/mct.hpp"
#include "sim/simulator.hpp"

namespace rd = readys::dag;
namespace rs = readys::sim;

TEST(ForkJoin, StructureAndCounts) {
  // 1 source + stages * (width*depth + 1 join).
  const auto g = rd::fork_join_graph(3, 4, 2);
  EXPECT_EQ(g.num_tasks(), 1u + 3u * (4u * 2u + 1u));
  EXPECT_EQ(g.sources().size(), 1u);
  EXPECT_EQ(g.sinks().size(), 1u);
  EXPECT_EQ(g.depth(), 3u * (2u + 1u));
  EXPECT_EQ(g.topological_order().size(), g.num_tasks());
}

TEST(ForkJoin, RejectsBadConfig) {
  EXPECT_THROW(rd::fork_join_graph(0, 1), std::invalid_argument);
  EXPECT_THROW(rd::fork_join_graph(1, 0), std::invalid_argument);
}

TEST(Stencil, StructureAndCounts) {
  const auto g = rd::stencil_1d_graph(4, 5);
  EXPECT_EQ(g.num_tasks(), 20u);
  EXPECT_EQ(g.sources().size(), 5u);  // entire first time step
  EXPECT_EQ(g.sinks().size(), 5u);    // entire last time step
  EXPECT_EQ(g.depth(), 3u);
  // Inner cell of step 2 depends on 3 neighbors.
  bool found_inner = false;
  for (rd::TaskId t = 0; t < g.num_tasks(); ++t) {
    if (g.in_degree(t) == 3) found_inner = true;
  }
  EXPECT_TRUE(found_inner);
}

TEST(Stencil, SingleCellIsAChain) {
  const auto g = rd::stencil_1d_graph(5, 1);
  EXPECT_EQ(g.num_tasks(), 5u);
  EXPECT_EQ(g.depth(), 4u);
  EXPECT_EQ(g.num_edges(), 4u);
}

TEST(ReductionTree, StructureAndCounts) {
  const auto g = rd::reduction_tree_graph(8);
  EXPECT_EQ(g.num_tasks(), 15u);  // 8 leaves + 7 internal
  EXPECT_EQ(g.sources().size(), 8u);
  EXPECT_EQ(g.sinks().size(), 1u);
  EXPECT_EQ(g.depth(), 3u);
  EXPECT_THROW(rd::reduction_tree_graph(6), std::invalid_argument);
  EXPECT_THROW(rd::reduction_tree_graph(0), std::invalid_argument);
}

TEST(ReductionTree, SingleLeafDegenerate) {
  const auto g = rd::reduction_tree_graph(1);
  EXPECT_EQ(g.num_tasks(), 1u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(IndependentTasks, NoEdgesAllTypes) {
  const auto g = rd::independent_tasks_graph(12);
  EXPECT_EQ(g.num_tasks(), 12u);
  EXPECT_EQ(g.num_edges(), 0u);
  const auto counts = g.kernel_counts();
  for (std::size_t k = 0; k < counts.size(); ++k) {
    EXPECT_EQ(counts[k], 3u) << "type " << k;
  }
}

TEST(SyntheticDags, SchedulableEndToEnd) {
  const rs::CostModel costs = rs::CostModel::cholesky();
  const auto p = rs::Platform::hybrid(2, 1);
  for (const auto& g :
       {rd::fork_join_graph(2, 3), rd::stencil_1d_graph(3, 4),
        rd::reduction_tree_graph(4), rd::independent_tasks_graph(10)}) {
    readys::sched::MctScheduler mct;
    rs::Simulator sim(g, p, costs, {0.3, 7});
    const auto result = sim.run(mct);
    EXPECT_EQ(result.trace.validate(g, p), "") << g.name();
  }
}
