// Poison-session isolation: one tenant's policy goes NaN mid-stream and
// the service quarantines it — while every other tenant's decision
// trace stays bit-identical to a run where the poison session never
// existed. This is the serving-layer fault-isolation contract, and it
// rests on forward_batched matching per-observation forward bit-for-bit
// (pinned by test_policy_net), per-session action RNG streams, and
// deadlines disabled so no wall-clock coupling sneaks in.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/readys.hpp"

namespace rc = readys::core;
namespace rr = readys::rl;
namespace rv = readys::serve;

namespace {

rr::AgentConfig small_agent() {
  rr::AgentConfig cfg;
  cfg.hidden = 8;
  cfg.gcn_layers = 1;
  cfg.window = 1;
  cfg.seed = 3;
  return cfg;
}

rv::SessionSpec healthy_spec(rc::App app, int tiles, std::uint64_t seed) {
  rv::SessionSpec s;
  s.app = app;
  s.tiles = tiles;
  s.seed = seed;
  s.deadline_us = -1.0;  // no wall-clock coupling in this proof
  return s;
}

/// The healthy tenants of the experiment: a mixed catalog so the poison
/// session shares block-diagonal batches with every app shape.
std::vector<rv::SessionSpec> healthy_specs() {
  return {
      healthy_spec(rc::App::kCholesky, 4, 11),
      healthy_spec(rc::App::kLu, 3, 22),
      healthy_spec(rc::App::kQr, 3, 33),
  };
}

rv::SessionSpec poison_spec() {
  rv::SessionSpec bad = healthy_spec(rc::App::kCholesky, 4, 66);
  bad.chaos_nan_after = 3;  // healthy for 3 decisions, then NaN forever
  return bad;
}

struct RunOutcome {
  std::vector<rv::SessionResult> healthy;  // in submit order
  rv::SessionResult poison;
  bool had_poison = false;
};

/// Runs the scenario with or without the poison tenant; sampling mode
/// (greedy=false) makes the test sensitive to *any* probability drift,
/// not just argmax flips.
RunOutcome run_scenario(const rr::PolicyNet& net,
                        const rr::AgentConfig& agent, int workers,
                        bool with_poison) {
  rv::ServiceConfig sc;
  sc.workers = workers;
  sc.max_active = 4;  // everyone shares one decision round
  sc.record_actions = true;
  sc.greedy = false;
  rv::DecisionService svc(net, agent, sc);

  std::vector<std::uint64_t> healthy_ids;
  std::uint64_t poison_id = 0;
  const auto specs = healthy_specs();
  // Poison in the middle of the batch, not at an edge.
  for (std::size_t i = 0; i < specs.size(); ++i) {
    if (with_poison && i == 1) {
      poison_id = svc.submit(poison_spec()).id;
    }
    healthy_ids.push_back(svc.submit(specs[i]).id);
  }

  if (workers == 0) {
    for (int guard = 0;; ++guard) {
      if (guard >= 100000) {
        ADD_FAILURE() << "pump did not drain";
        break;
      }
      if (svc.pump() == 0 && svc.queue_depth() == 0) break;
    }
  } else {
    svc.shutdown();
  }

  RunOutcome out;
  for (const auto& r : svc.results()) {
    if (with_poison && r.id == poison_id) {
      out.poison = r;
      out.had_poison = true;
      continue;
    }
    out.healthy.push_back(r);
  }
  if (workers == 0) svc.shutdown();
  return out;
}

void expect_bit_identical_isolation(const rr::PolicyNet& net,
                                    const rr::AgentConfig& agent,
                                    int workers) {
  RunOutcome with_poison = run_scenario(net, agent, workers, true);
  RunOutcome clean = run_scenario(net, agent, workers, false);

  // The poison tenant was quarantined after its healthy prefix.
  ASSERT_TRUE(with_poison.had_poison);
  EXPECT_EQ(with_poison.poison.state, rv::SessionState::kQuarantined);
  EXPECT_EQ(with_poison.poison.error, "non-finite policy probability");
  EXPECT_EQ(with_poison.poison.decisions, 3u);
  EXPECT_EQ(with_poison.poison.actions.size(), 3u);

  // Everyone else: bit-identical traces and makespans, as if the poison
  // session had never been admitted.
  ASSERT_EQ(with_poison.healthy.size(), clean.healthy.size());
  for (std::size_t i = 0; i < clean.healthy.size(); ++i) {
    const auto& a = with_poison.healthy[i];
    const auto& b = clean.healthy[i];
    EXPECT_EQ(a.state, rv::SessionState::kCompleted);
    EXPECT_EQ(b.state, rv::SessionState::kCompleted);
    EXPECT_EQ(a.actions, b.actions) << "trace diverged for tenant " << i;
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.decisions, b.decisions);
  }
}

}  // namespace

TEST(ChaosPoisonSession, PumpModeNeighborsBitIdentical) {
  const auto agent = small_agent();
  const rr::PolicyNet net(rr::StateEncoder::node_feature_width(4),
                          rr::StateEncoder::kResourceFeatureWidth, agent);
  expect_bit_identical_isolation(net, agent, /*workers=*/0);
}

TEST(ChaosPoisonSession, WorkerThreadsNeighborsBitIdentical) {
  // Same proof under real worker threads: batch composition now depends
  // on timing, which is exactly the point — decisions may not.
  const auto agent = small_agent();
  const rr::PolicyNet net(rr::StateEncoder::node_feature_width(4),
                          rr::StateEncoder::kResourceFeatureWidth, agent);
  expect_bit_identical_isolation(net, agent, /*workers=*/2);
}

TEST(ChaosPoisonSession, PoisonFromDecisionZeroIsQuarantinedImmediately) {
  const auto agent = small_agent();
  const rr::PolicyNet net(rr::StateEncoder::node_feature_width(4),
                          rr::StateEncoder::kResourceFeatureWidth, agent);
  rv::ServiceConfig sc;
  sc.workers = 0;
  sc.record_actions = true;
  rv::DecisionService svc(net, agent, sc);

  rv::SessionSpec bad = healthy_spec(rc::App::kCholesky, 3, 9);
  bad.chaos_nan_after = 0;
  svc.submit(bad);
  svc.pump();

  const auto results = svc.results();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].state, rv::SessionState::kQuarantined);
  EXPECT_EQ(results[0].decisions, 0u);
  EXPECT_TRUE(results[0].actions.empty());
  svc.shutdown();
}
