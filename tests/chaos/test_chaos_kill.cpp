// Chaos-kill harness for the crash-recovery contract: fork a real
// training run, SIGKILL it from inside save_checkpoint at randomized
// checkpoint boundaries and mid-write instants, resume from the
// surviving files, and require the final weights to be bit-identical to
// an uninterrupted reference run. Runs the full matrix the checkpoint
// code serves: {A2C, PPO} x {sequential, num_envs = 4}, plus the
// deterministic async actor–learner mode (A2C, --async-strict).
//
// The child never touches gtest: it installs the checkpoint write hook,
// trains until the hook raises SIGKILL, and _exit(0)s if the kill point
// was never reached (which the parent treats as a test failure).

#include <gtest/gtest.h>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "dag/cholesky.hpp"
#include "nn/serialize.hpp"
#include "rl/a2c.hpp"
#include "rl/checkpoint.hpp"
#include "rl/ppo.hpp"
#include "rl/state_encoder.hpp"
#include "rl/vec_env.hpp"
#include "sim/cost_model.hpp"
#include "sim/platform.hpp"
#include "util/rng.hpp"

namespace fs = std::filesystem;
namespace rd = readys::dag;
namespace rl = readys::rl;
namespace rn = readys::nn;
namespace rs = readys::sim;
using readys::util::Rng;

namespace {

enum class Trainer { kA2c, kPpo };

struct KillSpec {
  int index;          ///< checkpoint sequence number to strike at
  const char* phase;  ///< "begin", "mid-write", "pre-rename", "post-rename"
};

constexpr const char* kPhases[] = {"begin", "mid-write", "pre-rename",
                                   "post-rename"};

rl::AgentConfig tiny_config() {
  rl::AgentConfig cfg;
  cfg.hidden = 8;
  cfg.gcn_layers = 1;
  cfg.window = 1;
  cfg.seed = 11;  // identical across reference / victim / resume: a kill
                  // before the first completed save restarts from the
                  // same initial weights
  cfg.entropy_decay = false;
  return cfg;
}

rl::TrainOptions train_options(const std::string& dir, bool resume) {
  rl::TrainOptions opts;
  opts.episodes = 8;
  opts.sigma = 0.0;
  opts.seed = 17;
  opts.checkpoint_dir = dir;
  opts.checkpoint_every = 2;
  opts.resume = resume;
  return opts;
}

/// Runs one full training (possibly resuming from `dir`) and returns the
/// final serialized weights. Fresh net and trainer each call, exactly
/// like a process restart.
std::string run_training(Trainer trainer, std::size_t num_envs,
                         const std::string& dir, bool resume,
                         bool async_strict = false) {
  const auto graph = rd::cholesky_graph(3);
  const auto platform = rs::Platform::hybrid(1, 1);
  const auto costs = rs::CostModel::cholesky();
  const auto cfg = tiny_config();
  const rl::SchedulingEnv::Config env_cfg{0.0, cfg.window, 1};
  auto opts = train_options(dir, resume);
  if (async_strict) {
    // Deterministic actor–learner mode: a killed run must resume onto
    // the reference trajectory even with real actor threads in play.
    opts.async = true;
    opts.async_strict = true;
    opts.async_actors = 2;
    opts.async_batch = 1;
  }

  rl::PolicyNet net(rl::StateEncoder::node_feature_width(4),
                    rl::StateEncoder::kResourceFeatureWidth, cfg);
  if (trainer == Trainer::kA2c) {
    rl::A2CTrainer t(net, cfg);
    if (num_envs == 1) {
      rl::SchedulingEnv env(graph, platform, costs, env_cfg);
      t.train(env, opts);
    } else {
      rl::VecEnv envs(graph, platform, costs, env_cfg, num_envs);
      t.train(envs, opts);
    }
  } else {
    rl::PpoTrainer t(net, cfg,
                     {.rollout_episodes = 4, .epochs = 2, .minibatch = 16});
    if (num_envs == 1) {
      rl::SchedulingEnv env(graph, platform, costs, env_cfg);
      t.train(env, opts);
    } else {
      rl::VecEnv envs(graph, platform, costs, env_cfg, num_envs);
      t.train(envs, opts);
    }
  }
  return rn::serialize_parameters(net);
}

std::string scratch_dir(const std::string& name) {
  const fs::path dir = fs::temp_directory_path() / name;
  fs::remove_all(dir);
  return dir.string();
}

/// The kill matrix: three fixed strikes covering every torn-state class
/// (before any byte, torn tmp file, committed-but-unpointed file) plus
/// two randomized (index, phase) draws. Deterministic per `seed` so a
/// failure reproduces.
std::vector<KillSpec> kill_specs(std::uint64_t seed) {
  std::vector<KillSpec> specs = {
      {1, "begin"}, {1, "mid-write"}, {2, "mid-write"}};
  Rng rng(seed);
  for (int i = 0; i < 2; ++i) {
    // Indices 1 and 2 exist in every configuration (the vectorized runs
    // can only checkpoint at round boundaries: episodes 4 and 8).
    specs.push_back({static_cast<int>(1 + rng.uniform_index(2)),
                     kPhases[rng.uniform_index(4)]});
  }
  return specs;
}

void run_chaos_matrix(Trainer trainer, std::size_t num_envs,
                      const std::string& tag, bool async_strict = false) {
  // Uninterrupted reference, checkpointing enabled so the code path
  // matches the victim's exactly.
  const auto ref_dir = scratch_dir("readys-chaos-ref-" + tag);
  const std::string reference =
      run_training(trainer, num_envs, ref_dir, false, async_strict);
  fs::remove_all(ref_dir);

  const std::uint64_t matrix_seed =
      (trainer == Trainer::kA2c ? 100 : 200) + num_envs +
      (async_strict ? 50 : 0);
  for (const KillSpec& spec : kill_specs(matrix_seed)) {
    SCOPED_TRACE(tag + ": kill at checkpoint " + std::to_string(spec.index) +
                 " phase " + spec.phase);
    const auto dir =
        scratch_dir("readys-chaos-" + tag + "-" + std::to_string(spec.index) +
                    "-" + spec.phase);

    const pid_t pid = fork();
    ASSERT_NE(pid, -1) << "fork failed: " << std::strerror(errno);
    if (pid == 0) {
      // Child: arm the strike, train, die mid-save.
      rl::testing_hooks::set_checkpoint_write_hook(
          [&spec](const char* phase, int index) {
            if (index == spec.index && std::strcmp(phase, spec.phase) == 0) {
              ::raise(SIGKILL);
            }
          });
      run_training(trainer, num_envs, dir, false, async_strict);
      ::_exit(0);  // strike never fired — parent flags this as a failure
    }

    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL)
        << "child was not SIGKILLed (status " << status
        << "); the kill point was never reached";

    // Restart: a fresh trainer resumes from whatever files survived and
    // must land on the reference weights bit for bit.
    const std::string resumed =
        run_training(trainer, num_envs, dir, true, async_strict);
    EXPECT_EQ(resumed, reference);
    fs::remove_all(dir);
  }
}

}  // namespace

TEST(ChaosKill, A2cSequentialSurvivesKillAndResumesBitIdentical) {
  run_chaos_matrix(Trainer::kA2c, 1, "a2c-seq");
}

TEST(ChaosKill, A2cVectorizedSurvivesKillAndResumesBitIdentical) {
  run_chaos_matrix(Trainer::kA2c, 4, "a2c-vec4");
}

TEST(ChaosKill, A2cAsyncStrictSurvivesKillAndResumesBitIdentical) {
  run_chaos_matrix(Trainer::kA2c, 4, "a2c-async4", /*async_strict=*/true);
}

TEST(ChaosKill, PpoSequentialSurvivesKillAndResumesBitIdentical) {
  run_chaos_matrix(Trainer::kPpo, 1, "ppo-seq");
}

TEST(ChaosKill, PpoVectorizedSurvivesKillAndResumesBitIdentical) {
  run_chaos_matrix(Trainer::kPpo, 4, "ppo-vec4");
}
