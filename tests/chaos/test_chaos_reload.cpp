// Reload + supervision chaos: a reload storm racing live decision
// rounds (every decision still executes against exactly one published
// snapshot version), a poisoned checkpoint swap that must roll back
// without an outage, SIGKILL-style worker death mid-round (only the
// affected batch retires; the supervisor restarts the slot), and
// escalation to service-wide degraded mode once deaths blow the restart
// budget — the service keeps answering with one-shot MCT.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <limits>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/readys.hpp"
#include "rl/checkpoint.hpp"

namespace rc = readys::core;
namespace rr = readys::rl;
namespace rv = readys::serve;

namespace {

rr::AgentConfig small_agent() {
  rr::AgentConfig cfg;
  cfg.hidden = 8;
  cfg.gcn_layers = 1;
  cfg.window = 1;
  cfg.seed = 3;
  return cfg;
}

rr::PolicyNet small_net(const rr::AgentConfig& cfg) {
  return rr::PolicyNet(rr::StateEncoder::node_feature_width(4),
                       rr::StateEncoder::kResourceFeatureWidth, cfg);
}

rv::SessionSpec spec_for(rc::App app, int tiles, std::uint64_t seed,
                         const std::string& tenant = "default") {
  rv::SessionSpec s;
  s.app = app;
  s.tiles = tiles;
  s.seed = seed;
  s.deadline_us = -1.0;
  s.tenant = tenant;
  return s;
}

}  // namespace

// A thread hammers force-reloads while worker threads serve a stream of
// sessions. Proof obligations: the service completes everything, and
// every session's recorded weight-version trace is monotone — a round
// never mixes versions and adoption only moves forward.
TEST(ChaosReload, ReloadStormRacingDecisionRounds) {
  const auto agent = small_agent();
  const auto net = small_net(agent);
  rv::ServiceConfig sc;
  sc.workers = 2;
  sc.max_active = 4;
  sc.record_actions = true;
  rv::DecisionService svc(net, agent, sc);

  std::atomic<bool> stop{false};
  std::uint64_t reloads_done = 0;
  std::thread storm([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const rv::ReloadResult r = svc.reload(net, /*force=*/true);
      if (r.status == rv::ReloadStatus::kPublished) ++reloads_done;
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });

  const int kSessions = 24;
  for (std::uint64_t s = 1; s <= kSessions; ++s) {
    svc.submit(spec_for(s % 2 == 0 ? rc::App::kCholesky : rc::App::kLu, 3,
                        s));
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  svc.drain();
  svc.wait_idle();
  stop.store(true, std::memory_order_relaxed);
  storm.join();
  svc.shutdown();

  EXPECT_GT(reloads_done, 0u);
  EXPECT_EQ(svc.counters().completed, static_cast<std::uint64_t>(kSessions));
  EXPECT_EQ(svc.counters().quarantined, 0u);
  const std::uint64_t final_version = svc.active_weight_version();
  for (const auto& r : svc.results()) {
    ASSERT_EQ(r.weight_versions.size(), r.actions.size());
    for (std::size_t i = 0; i < r.weight_versions.size(); ++i) {
      EXPECT_GE(r.weight_versions[i], 1u);
      EXPECT_LE(r.weight_versions[i], final_version);
      if (i > 0) EXPECT_LE(r.weight_versions[i - 1], r.weight_versions[i]);
    }
  }
}

// A poisoned (NaN) candidate and a truncated checkpoint file both hit a
// service under live load: the gate must reject them (rollback to
// last-good), no session may shed or quarantine because of the attempt,
// and the swap machinery keeps working afterwards.
TEST(ChaosReload, PoisonedAndTruncatedCandidatesRollBackWithoutOutage) {
  const auto agent = small_agent();
  const auto net = small_net(agent);
  auto poisoned = small_net(agent);
  poisoned.parameters()[0].mutable_value().data()[0] =
      std::numeric_limits<double>::quiet_NaN();

  rr::CheckpointData data;
  data.trainer = "a2c";
  const std::string blob = rr::serialize_checkpoint(net, data);
  const std::string truncated_path =
      ::testing::TempDir() + "readys_chaos_truncated.txt";
  {
    std::ofstream out(truncated_path, std::ios::binary | std::ios::trunc);
    out << blob.substr(0, blob.size() / 3);
  }

  rv::ServiceConfig sc;
  sc.workers = 2;
  rv::DecisionService svc(net, agent, sc);
  const int kSessions = 16;
  for (std::uint64_t s = 1; s <= kSessions; ++s) {
    svc.submit(spec_for(rc::App::kCholesky, 3, s));
    if (s == 4) {
      const rv::ReloadResult r = svc.reload(poisoned);
      EXPECT_EQ(r.status, rv::ReloadStatus::kRejected);
      EXPECT_EQ(r.version, 1u);
    }
    if (s == 8) {
      const rv::ReloadResult r = svc.reload_from_file(truncated_path);
      EXPECT_EQ(r.status, rv::ReloadStatus::kRejected);
      EXPECT_EQ(r.version, 1u);
    }
  }
  // The gate still publishes good candidates after the rejects.
  const rv::ReloadResult ok = svc.reload(net, /*force=*/true);
  EXPECT_EQ(ok.status, rv::ReloadStatus::kPublished);
  EXPECT_EQ(ok.version, 2u);

  svc.drain();
  svc.wait_idle();
  svc.shutdown();
  std::remove(truncated_path.c_str());

  EXPECT_EQ(svc.counters().completed, static_cast<std::uint64_t>(kSessions));
  EXPECT_EQ(svc.counters().quarantined, 0u);
  EXPECT_EQ(svc.counters().shed, 0u);
  EXPECT_EQ(svc.counters().reload_rejects, 2u);
  EXPECT_EQ(svc.active_weight_version(), 2u);
}

// SIGKILL-style worker death mid-round: the chaos hook throws out of one
// round, simulating the worker dying with a batch in hand. Only that
// batch retires (quarantined, typed reason); the supervisor restarts the
// slot and every later session completes normally.
TEST(ChaosReload, WorkerDeathMidRoundRetiresOnlyItsBatch) {
  const auto agent = small_agent();
  const auto net = small_net(agent);
  rv::ServiceConfig sc;
  sc.workers = 1;
  sc.max_active = 2;
  sc.watchdog_period_ms = 1.0;  // fast supervisor ticks
  sc.supervise.backoff_ms = 1.0;
  std::atomic<int> kills{1};
  sc.chaos_round_hook = [&kills](std::size_t, std::uint64_t) {
    if (kills.fetch_sub(1, std::memory_order_relaxed) > 0) {
      throw std::runtime_error("chaos: simulated worker SIGKILL");
    }
  };
  rv::DecisionService svc(net, agent, sc);

  for (std::uint64_t s = 1; s <= 8; ++s) {
    svc.submit(spec_for(rc::App::kCholesky, 3, s));
  }
  svc.drain();
  svc.wait_idle();
  svc.shutdown();

  const auto c = svc.counters();
  // The first round's batch (1-2 sessions, depending on how many
  // submits the worker raced ahead of) died with the worker; the
  // restarted worker completed every other session.
  EXPECT_GE(c.quarantined, 1u);
  EXPECT_LE(c.quarantined, 2u);
  EXPECT_EQ(c.completed + c.quarantined, 8u);
  EXPECT_GE(c.worker_restarts, 1u);
  EXPECT_FALSE(svc.degraded());
  for (const auto& r : svc.results()) {
    if (r.state == rv::SessionState::kQuarantined) {
      EXPECT_NE(r.error.find("worker crashed"), std::string::npos)
          << r.error;
      EXPECT_NE(r.error.find("SIGKILL"), std::string::npos) << r.error;
    } else {
      EXPECT_EQ(r.state, rv::SessionState::kCompleted);
    }
  }
}

// Past the restart budget the supervisor stops trusting the policy:
// degraded mode answers every decision with one-shot MCT — rounds can no
// longer die on the policy path, so the service keeps serving.
TEST(ChaosReload, RepeatedDeathsEscalateToDegradedModeThatStillServes) {
  const auto agent = small_agent();
  const auto net = small_net(agent);
  rv::ServiceConfig sc;
  sc.workers = 1;
  sc.max_active = 2;
  sc.watchdog_period_ms = 1.0;
  sc.supervise.backoff_ms = 1.0;
  sc.supervise.restart_budget = 2;
  sc.record_actions = true;
  // Kill every round that tries to run the policy. Degraded rounds skip
  // the hook's victimized policy path entirely — the hook itself models
  // a policy-triggered crash, so it stops firing once degraded.
  std::atomic<int> deaths{0};
  rv::DecisionService* svc_ptr = nullptr;
  sc.chaos_round_hook = [&deaths, &svc_ptr](std::size_t, std::uint64_t) {
    if (svc_ptr != nullptr && !svc_ptr->degraded()) {
      deaths.fetch_add(1, std::memory_order_relaxed);
      throw std::runtime_error("chaos: policy crashes the worker");
    }
  };
  rv::DecisionService svc(net, agent, sc);
  svc_ptr = &svc;

  const int kSessions = 12;
  for (std::uint64_t s = 1; s <= kSessions; ++s) {
    svc.submit(spec_for(rc::App::kCholesky, 3, s));
  }
  svc.drain();
  svc.wait_idle();
  svc.shutdown();

  const auto c = svc.counters();
  EXPECT_TRUE(svc.degraded());
  EXPECT_GT(deaths.load(), 2);  // blew the budget
  EXPECT_GE(c.worker_restarts, 3u);
  EXPECT_GT(c.completed, 0u);  // the service kept answering
  EXPECT_EQ(c.completed + c.quarantined,
            static_cast<std::uint64_t>(kSessions));
  // Degraded decisions are MCT fallbacks, and completed sessions that
  // ran entirely degraded count fallbacks == decisions.
  EXPECT_GT(c.fallbacks, 0u);
}

// Deterministic degraded decisions: with deadline_us == 0 every decision
// degrades to one-shot MCT without consulting the clock, so two runs
// produce bit-identical traces — the same guarantee degraded mode rides.
TEST(ChaosReload, ZeroBudgetDegradedTraceIsDeterministic) {
  const auto agent = small_agent();
  const auto net = small_net(agent);
  auto run = [&] {
    rv::ServiceConfig sc;
    sc.workers = 0;
    sc.deadline_us = 0.0;
    sc.record_actions = true;
    rv::DecisionService svc(net, agent, sc);
    for (std::uint64_t s = 1; s <= 3; ++s) {
      auto spec = spec_for(rc::App::kQr, 3, s);
      spec.deadline_us = 0.0;  // inherit the service's zero budget
      svc.submit(spec);
    }
    for (int guard = 0; guard < 100000; ++guard) {
      if (svc.pump() == 0 && svc.queue_depth() == 0) break;
    }
    svc.shutdown();
    return svc.results();
  };
  const auto a = run();
  const auto b = run();
  ASSERT_EQ(a.size(), 3u);
  ASSERT_EQ(b.size(), 3u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].actions, b[i].actions);
    EXPECT_EQ(a[i].timeouts, a[i].decisions);
    EXPECT_EQ(a[i].fallbacks, a[i].decisions);
  }
}
