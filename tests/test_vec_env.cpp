// The batched-rollout contract (docs/api.md): the vectorized pieces —
// VecEnv, PolicyNet::forward_batched, the vec train() overloads, the
// scheduler registry, and RunConfig — must reproduce the sequential
// paths exactly where the API promises it (num_envs = 1, batched
// forward vs per-graph loop) and deterministically everywhere else.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/run_config.hpp"
#include "dag/cholesky.hpp"
#include "rl/a2c.hpp"
#include "rl/ppo.hpp"
#include "rl/readys_scheduler.hpp"
#include "rl/vec_env.hpp"
#include "sched/scheduler.hpp"
#include "sim/simulator.hpp"
#include "tensor/ops.hpp"
#include "util/thread_pool.hpp"

namespace rd = readys::dag;
namespace rs = readys::sim;
namespace rr = readys::rl;
namespace rc = readys::core;
namespace rt = readys::tensor;

namespace {

rr::AgentConfig tiny_config() {
  rr::AgentConfig cfg;
  cfg.hidden = 16;
  cfg.gcn_layers = 1;
  cfg.window = 1;
  cfg.unroll = 0;  // vec training requires whole-episode returns
  cfg.lr = 3e-3;
  cfg.seed = 5;
  return cfg;
}

/// Observations from different seeds/depths of the same instance, so a
/// batch mixes window sizes, ready counts, and allow_idle states.
std::vector<rr::Observation> diverse_observations(
    const rd::TaskGraph& graph, const rs::Platform& platform,
    const rs::CostModel& costs, std::size_t n) {
  std::vector<rr::Observation> out;
  for (std::size_t g = 0; g < n; ++g) {
    rr::SchedulingEnv env(graph, platform, costs,
                          {0.2, 1, 10 + g, /*random_offer=*/true});
    env.reset();
    for (std::size_t s = 0; s < g; ++s) {
      if (env.done()) break;
      env.step(g % env.observation().num_actions());
    }
    out.push_back(env.observation());
  }
  return out;
}

void expect_tensors_near(const rt::Tensor& a, const rt::Tensor& b,
                         double tol) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t c = 0; c < a.cols(); ++c) {
      EXPECT_NEAR(a.at(r, c), b.at(r, c), tol) << "at (" << r << "," << c
                                               << ")";
    }
  }
}

void expect_reports_equal(const rr::TrainReport& a, const rr::TrainReport& b) {
  ASSERT_EQ(a.episode_rewards.size(), b.episode_rewards.size());
  for (std::size_t i = 0; i < a.episode_rewards.size(); ++i) {
    EXPECT_EQ(a.episode_rewards[i], b.episode_rewards[i]) << "episode " << i;
    EXPECT_EQ(a.episode_makespans[i], b.episode_makespans[i])
        << "episode " << i;
  }
  EXPECT_EQ(a.best_makespan, b.best_makespan);
  EXPECT_EQ(a.final_mean_reward, b.final_mean_reward);
  EXPECT_EQ(a.updates, b.updates);
}

void expect_params_equal(const rr::PolicyNet& a, const rr::PolicyNet& b) {
  const auto pa = a.parameters();
  const auto pb = b.parameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_TRUE(pa[i].value() == pb[i].value()) << "parameter " << i;
  }
}

}  // namespace

// ---------------------------------------------------------------------
// Batched forward parity
// ---------------------------------------------------------------------

TEST(VecEnv, BatchedForwardMatchesPerGraph) {
  const auto graph = rd::cholesky_graph(4);
  const auto platform = rs::Platform::hybrid(2, 2);
  const auto costs = rs::CostModel::cholesky();
  const auto obs = diverse_observations(graph, platform, costs, 4);

  auto cfg = tiny_config();
  cfg.gcn_layers = 2;  // exercise the stacked block-diagonal trunk
  rr::PolicyNet net(rr::StateEncoder::node_feature_width(4),
                    rr::StateEncoder::kResourceFeatureWidth, cfg);

  std::vector<const rr::Observation*> batch;
  for (const auto& o : obs) batch.push_back(&o);
  const auto outs = net.forward_batched(batch);
  ASSERT_EQ(outs.size(), obs.size());

  for (std::size_t g = 0; g < obs.size(); ++g) {
    const auto ref = net.forward(obs[g]);
    expect_tensors_near(outs[g].probs.value(), ref.probs.value(), 1e-10);
    expect_tensors_near(outs[g].log_probs.value(), ref.log_probs.value(),
                        1e-10);
    expect_tensors_near(outs[g].value.value(), ref.value.value(), 1e-10);
    EXPECT_EQ(outs[g].probs.value().cols(), obs[g].num_actions());
  }
}

TEST(VecEnv, BatchedForwardGradientsMatchPerGraph) {
  const auto graph = rd::cholesky_graph(4);
  const auto platform = rs::Platform::hybrid(2, 2);
  const auto costs = rs::CostModel::cholesky();
  const auto obs = diverse_observations(graph, platform, costs, 4);

  const auto cfg = tiny_config();
  // Same config seed => identical initial weights in both nets.
  rr::PolicyNet net_batched(rr::StateEncoder::node_feature_width(4),
                            rr::StateEncoder::kResourceFeatureWidth, cfg);
  rr::PolicyNet net_loop(rr::StateEncoder::node_feature_width(4),
                         rr::StateEncoder::kResourceFeatureWidth, cfg);
  expect_params_equal(net_batched, net_loop);

  // Identical scalar loss built from both paths:
  //   sum_g log pi_g(a=0) + V_g(s).
  auto loss_of = [](const rr::PolicyNet::Output& out) {
    return rt::add(rt::pick(out.log_probs, 0, 0), out.value);
  };

  std::vector<const rr::Observation*> batch;
  for (const auto& o : obs) batch.push_back(&o);
  const auto outs = net_batched.forward_batched(batch);
  rt::Var loss_b = loss_of(outs[0]);
  for (std::size_t g = 1; g < outs.size(); ++g) {
    loss_b = rt::add(loss_b, loss_of(outs[g]));
  }
  loss_b.backward();

  rt::Var loss_l = loss_of(net_loop.forward(obs[0]));
  for (std::size_t g = 1; g < obs.size(); ++g) {
    loss_l = rt::add(loss_l, loss_of(net_loop.forward(obs[g])));
  }
  loss_l.backward();

  EXPECT_NEAR(loss_b.value().item(), loss_l.value().item(), 1e-10);
  const auto pb = net_batched.parameters();
  const auto pl = net_loop.parameters();
  ASSERT_EQ(pb.size(), pl.size());
  for (std::size_t i = 0; i < pb.size(); ++i) {
    expect_tensors_near(pb[i].grad(), pl[i].grad(), 1e-10);
  }
}

// ---------------------------------------------------------------------
// VecEnv lifecycle
// ---------------------------------------------------------------------

TEST(VecEnv, ConstructionValidatesInput) {
  EXPECT_THROW(rr::VecEnv(std::vector<std::unique_ptr<rr::SchedulingEnv>>{}),
               std::invalid_argument);

  const auto graph = rd::cholesky_graph(2);
  const auto platform = rs::Platform::hybrid(1, 1);
  const auto costs = rs::CostModel::cholesky();
  rr::VecEnv envs(graph, platform, costs, {0.0, 1, 7}, 3);
  EXPECT_EQ(envs.size(), 3u);
  // Seed-count mismatch on the batch reset.
  EXPECT_THROW(envs.reset({1, 2}), std::invalid_argument);
}

TEST(VecEnv, StepAlignsWithIdsAndFinishesEpisodes) {
  const auto graph = rd::cholesky_graph(3);
  const auto platform = rs::Platform::hybrid(1, 1);
  const auto costs = rs::CostModel::cholesky();
  rr::VecEnv envs(graph, platform, costs, {0.0, 1, 7}, 2);
  envs.reset({11, 12});

  std::vector<std::size_t> active{0, 1};
  int guard = 0;
  while (!active.empty() && ++guard < 1000) {
    const auto obs = envs.observations(active);
    ASSERT_EQ(obs.size(), active.size());
    std::vector<std::size_t> actions(active.size(), 0);
    const auto results = envs.step(active, actions);
    ASSERT_EQ(results.size(), active.size());
    std::vector<std::size_t> next;
    for (std::size_t k = 0; k < active.size(); ++k) {
      if (!results[k].done) next.push_back(active[k]);
    }
    active = std::move(next);
  }
  EXPECT_TRUE(active.empty());
  EXPECT_GT(envs.env(0).makespan(), 0.0);
  EXPECT_GT(envs.env(1).makespan(), 0.0);
}

TEST(VecEnv, ResetReturnsInitialObservationAndOldSequenceWorks) {
  const auto graph = rd::cholesky_graph(3);
  const auto platform = rs::Platform::hybrid(1, 1);
  const auto costs = rs::CostModel::cholesky();
  rr::SchedulingEnv env(graph, platform, costs,
                        {0.2, 1, 3, /*random_offer=*/true});

  // New form: reset() returns the first observation...
  const rr::Observation& first = env.reset();
  EXPECT_GE(first.num_actions(), 1u);
  // ...which is the very object observation() refers to (old two-call
  // sequence unchanged).
  EXPECT_EQ(&first, &env.observation());

  const rt::Tensor features = first.features;
  const rt::Tensor resources = first.resource_state;

  // Explicit seed == configured seed replays the same start state.
  const rr::Observation& replay = env.reset(3);
  EXPECT_TRUE(replay.features == features);
  EXPECT_TRUE(replay.resource_state == resources);

  // A detour through another seed does not stick: argument-less reset()
  // returns to the configured seed.
  env.reset(12345);
  const rr::Observation& back = env.reset();
  EXPECT_TRUE(back.features == features);
  EXPECT_TRUE(back.resource_state == resources);
}

// ---------------------------------------------------------------------
// num_envs = 1 bit-exactness vs the sequential trainers
// ---------------------------------------------------------------------

TEST(VecEnv, NumEnvs1A2CMatchesSequentialBitExact) {
  const auto graph = rd::cholesky_graph(3);
  const auto platform = rs::Platform::hybrid(1, 1);
  const auto costs = rs::CostModel::cholesky();
  const auto cfg = tiny_config();
  const rr::SchedulingEnv::Config env_cfg{0.1, cfg.window, 9};
  rr::TrainOptions opts;
  opts.episodes = 6;
  opts.sigma = 0.1;
  opts.seed = 21;

  rr::PolicyNet net_seq(rr::StateEncoder::node_feature_width(4),
                        rr::StateEncoder::kResourceFeatureWidth, cfg);
  rr::A2CTrainer seq(net_seq, cfg);
  rr::SchedulingEnv env(graph, platform, costs, env_cfg);
  const auto report_seq = seq.train(env, opts);

  rr::PolicyNet net_vec(rr::StateEncoder::node_feature_width(4),
                        rr::StateEncoder::kResourceFeatureWidth, cfg);
  rr::A2CTrainer vec(net_vec, cfg);
  rr::VecEnv envs(graph, platform, costs, env_cfg, 1);
  const auto report_vec = vec.train(envs, opts);

  expect_reports_equal(report_seq, report_vec);
  expect_params_equal(net_seq, net_vec);
}

TEST(VecEnv, NumEnvs1PpoMatchesSequentialBitExact) {
  const auto graph = rd::cholesky_graph(3);
  const auto platform = rs::Platform::hybrid(1, 1);
  const auto costs = rs::CostModel::cholesky();
  const auto cfg = tiny_config();
  const rr::SchedulingEnv::Config env_cfg{0.1, cfg.window, 9};
  rr::TrainOptions opts;
  opts.episodes = 6;
  opts.sigma = 0.1;
  opts.seed = 33;

  rr::PolicyNet net_seq(rr::StateEncoder::node_feature_width(4),
                        rr::StateEncoder::kResourceFeatureWidth, cfg);
  rr::PpoTrainer seq(net_seq, cfg);
  rr::SchedulingEnv env(graph, platform, costs, env_cfg);
  const auto report_seq = seq.train(env, opts);

  rr::PolicyNet net_vec(rr::StateEncoder::node_feature_width(4),
                        rr::StateEncoder::kResourceFeatureWidth, cfg);
  rr::PpoTrainer vec(net_vec, cfg);
  rr::VecEnv envs(graph, platform, costs, env_cfg, 1);
  const auto report_vec = vec.train(envs, opts);

  expect_reports_equal(report_seq, report_vec);
  expect_params_equal(net_seq, net_vec);
}

TEST(VecEnv, A2CVecTrainingRejectsUnroll) {
  const auto graph = rd::cholesky_graph(2);
  const auto platform = rs::Platform::hybrid(1, 1);
  const auto costs = rs::CostModel::cholesky();
  auto cfg = tiny_config();
  cfg.unroll = 16;
  rr::PolicyNet net(rr::StateEncoder::node_feature_width(4),
                    rr::StateEncoder::kResourceFeatureWidth, cfg);
  rr::A2CTrainer trainer(net, cfg);
  rr::VecEnv envs(graph, platform, costs, {0.0, cfg.window, 1}, 2);
  rr::TrainOptions opts;
  opts.episodes = 2;
  EXPECT_THROW(trainer.train(envs, opts), std::invalid_argument);
}

// ---------------------------------------------------------------------
// Multi-env determinism: pooled and serial stepping agree exactly
// ---------------------------------------------------------------------

TEST(VecEnv, FourEnvTrainingIsReplayDeterministic) {
  const auto graph = rd::cholesky_graph(3);
  const auto platform = rs::Platform::hybrid(1, 1);
  const auto costs = rs::CostModel::cholesky();
  const auto cfg = tiny_config();
  const rr::SchedulingEnv::Config env_cfg{0.1, cfg.window, 9};
  rr::TrainOptions opts;
  opts.episodes = 8;
  opts.sigma = 0.1;
  opts.seed = 5;

  auto run = [&](readys::util::ThreadPool* pool) {
    auto net = std::make_unique<rr::PolicyNet>(
        rr::StateEncoder::node_feature_width(4),
        rr::StateEncoder::kResourceFeatureWidth, cfg);
    rr::A2CTrainer trainer(*net, cfg);
    rr::VecEnv envs(graph, platform, costs, env_cfg, 4, pool);
    auto report = trainer.train(envs, opts);
    return std::make_pair(std::move(net), std::move(report));
  };

  readys::util::ThreadPool pool;
  const auto [net_pooled, report_pooled] = run(&pool);
  const auto [net_serial, report_serial] = run(nullptr);

  expect_reports_equal(report_pooled, report_serial);
  expect_params_equal(*net_pooled, *net_serial);
  EXPECT_EQ(report_pooled.episode_rewards.size(), 8u);
}

// ---------------------------------------------------------------------
// Update cadence: the multi-env reward-collapse regression (the vec
// trainer used to apply ONE update per width-N round, an 8x cut in
// gradient steps at N = 8 that tanked final reward from -0.49 to -6.5;
// see BENCH_train_quality.json)
// ---------------------------------------------------------------------

namespace {

rr::TrainReport train_a2c_vec(std::size_t width, int episodes,
                              int updates_per_round) {
  const auto graph = rd::cholesky_graph(4);
  const auto platform = rs::Platform::hybrid(2, 2);
  const auto costs = rs::CostModel::cholesky();
  const auto cfg = tiny_config();
  const rr::SchedulingEnv::Config env_cfg{0.1, cfg.window, 9};
  rr::TrainOptions opts;
  opts.episodes = episodes;
  opts.sigma = 0.1;
  opts.seed = 21;
  opts.updates_per_round = updates_per_round;
  rr::PolicyNet net(rr::StateEncoder::node_feature_width(4),
                    rr::StateEncoder::kResourceFeatureWidth, cfg);
  rr::A2CTrainer trainer(net, cfg);
  if (width == 1) {
    rr::SchedulingEnv env(graph, platform, costs, env_cfg);
    return trainer.train(env, opts);
  }
  rr::VecEnv envs(graph, platform, costs, env_cfg, width);
  return trainer.train(envs, opts);
}

}  // namespace

TEST(VecCadence, UpdateCountMatchesEpisodesAtAnyWidth) {
  // The fixed default (updates_per_round = 0): one gradient step per
  // episode, exactly like the sequential trainer, at any width.
  EXPECT_EQ(train_a2c_vec(4, 16, 0).updates, 16u);
  EXPECT_EQ(train_a2c_vec(8, 16, 0).updates, 16u);
  // The legacy cadence is still reachable explicitly, and still means
  // what it used to: one update per width-N round.
  EXPECT_EQ(train_a2c_vec(8, 16, 1).updates, 2u);
  EXPECT_EQ(train_a2c_vec(4, 16, 1).updates, 4u);
  // Intermediate grouping: 2 groups per round.
  EXPECT_EQ(train_a2c_vec(8, 16, 2).updates, 4u);
}

TEST(VecCadence, Width4And8FinalRewardTracksSequential) {
  const int episodes = 96;
  const auto seq = train_a2c_vec(1, episodes, 0);
  const auto vec4 = train_a2c_vec(4, episodes, 0);
  const auto vec8 = train_a2c_vec(8, episodes, 0);
  ASSERT_EQ(seq.episode_rewards.size(), static_cast<std::size_t>(episodes));
  // Same number of Adam steps => same learning budget; the final reward
  // must land in the sequential run's neighborhood, not an order of
  // magnitude below it. The band is deliberately loose (trajectories
  // differ, these are stochastic runs) — the collapse this guards
  // against was a 10x gap, not a 50% one.
  const double floor = seq.final_mean_reward -
                       (0.75 * std::fabs(seq.final_mean_reward) + 0.25);
  EXPECT_GT(vec4.final_mean_reward, floor)
      << "vec4 " << vec4.final_mean_reward << " vs sequential "
      << seq.final_mean_reward;
  EXPECT_GT(vec8.final_mean_reward, floor)
      << "vec8 " << vec8.final_mean_reward << " vs sequential "
      << seq.final_mean_reward;
}

TEST(VecCadence, LegacyCoarseCadenceIsMeasurablyWorse) {
  // The pre-fix behavior, kept reachable via updates_per_round = 1:
  // 12 updates instead of 96 must learn measurably less on the same
  // episode budget. If this starts passing the fixed cadence's band,
  // the fingerprint (and the bench cell) needs re-examining.
  const int episodes = 96;
  const auto fixed = train_a2c_vec(8, episodes, 0);
  const auto coarse = train_a2c_vec(8, episodes, 1);
  EXPECT_EQ(coarse.updates, 12u);
  EXPECT_LT(coarse.final_mean_reward, fixed.final_mean_reward);
}

// ---------------------------------------------------------------------
// Async actor–learner
// ---------------------------------------------------------------------

namespace {

struct AsyncRun {
  rr::TrainReport report;
  std::unique_ptr<rr::PolicyNet> net;
};

AsyncRun train_a2c_async(std::size_t width, int episodes, bool strict,
                         int actors) {
  const auto graph = rd::cholesky_graph(3);
  const auto platform = rs::Platform::hybrid(1, 1);
  const auto costs = rs::CostModel::cholesky();
  const auto cfg = tiny_config();
  const rr::SchedulingEnv::Config env_cfg{0.1, cfg.window, 9};
  rr::TrainOptions opts;
  opts.episodes = episodes;
  opts.sigma = 0.1;
  opts.seed = 21;
  opts.async = true;
  opts.async_strict = strict;
  opts.async_actors = actors;
  opts.async_batch = 1;
  AsyncRun run;
  run.net = std::make_unique<rr::PolicyNet>(
      rr::StateEncoder::node_feature_width(4),
      rr::StateEncoder::kResourceFeatureWidth, cfg);
  rr::A2CTrainer trainer(*run.net, cfg);
  rr::VecEnv envs(graph, platform, costs, env_cfg, width);
  run.report = trainer.train(envs, opts);
  return run;
}

}  // namespace

TEST(AsyncTrain, StrictModeIsRunToRunDeterministic) {
  // Two independent runs with multiple actor threads: identical episode
  // streams, rewards, and final weights — the whole point of
  // --async-strict. (Actor threads race for episode claims, but strict
  // windows park them during updates and the learner sorts by index.)
  const auto a = train_a2c_async(4, 12, /*strict=*/true, /*actors=*/2);
  const auto b = train_a2c_async(4, 12, /*strict=*/true, /*actors=*/2);
  expect_reports_equal(a.report, b.report);
  expect_params_equal(*a.net, *b.net);
  EXPECT_EQ(a.report.episode_rewards.size(), 12u);
  EXPECT_EQ(a.report.updates, 12u);
}

TEST(AsyncTrain, FreeModeTrainsEveryEpisodeExactlyOnce) {
  // Free mode trades determinism for overlap, but never episode
  // accounting: every index trains exactly once, per-episode cadence,
  // finite rewards, real makespans.
  const auto run = train_a2c_async(4, 12, /*strict=*/false, /*actors=*/4);
  EXPECT_EQ(run.report.episode_rewards.size(), 12u);
  EXPECT_EQ(run.report.updates, 12u);
  EXPECT_GT(run.report.best_makespan, 0.0);
  for (double r : run.report.episode_rewards) {
    EXPECT_TRUE(std::isfinite(r));
  }
  EXPECT_TRUE(std::isfinite(run.report.final_mean_reward));
}

// ---------------------------------------------------------------------
// Scheduler registry
// ---------------------------------------------------------------------

TEST(SchedulerRegistry, EveryBuiltinConstructsAndSchedules) {
  const auto graph = rd::cholesky_graph(4);
  const auto platform = rs::Platform::hybrid(2, 2);
  const auto costs = rs::CostModel::cholesky();

  for (const char* name :
       {"heft", "mct", "mct-comm", "greedy", "cp", "minmin", "maxmin",
        "sufferage", "olb", "random"}) {
    EXPECT_TRUE(readys::sched::registry().contains(name)) << name;
  }

  for (const std::string& name : readys::sched::registry().names()) {
    if (name == "readys") continue;  // needs a live net; covered below
    readys::sched::SchedulerConfig cfg;
    cfg.seed = 42;
    auto sched = readys::sched::make_scheduler(name, cfg);
    ASSERT_NE(sched, nullptr) << name;
    const double mk =
        rs::simulate_makespan(graph, platform, costs, *sched, 0.0, 42);
    EXPECT_TRUE(std::isfinite(mk)) << name;
    EXPECT_GT(mk, 0.0) << name;
  }

  EXPECT_THROW(readys::sched::make_scheduler("no-such-policy"),
               std::invalid_argument);
}

TEST(SchedulerRegistry, ReadysSchedulerRegistersAndRuns) {
  const auto graph = rd::cholesky_graph(3);
  const auto platform = rs::Platform::hybrid(1, 1);
  const auto costs = rs::CostModel::cholesky();
  const auto cfg = tiny_config();
  rr::PolicyNet net(rr::StateEncoder::node_feature_width(4),
                    rr::StateEncoder::kResourceFeatureWidth, cfg);

  rr::register_readys_scheduler(net, cfg.window);
  EXPECT_TRUE(readys::sched::registry().contains("readys"));

  auto sched = readys::sched::make_scheduler("readys");
  ASSERT_NE(sched, nullptr);
  const double mk =
      rs::simulate_makespan(graph, platform, costs, *sched, 0.0, 7);
  EXPECT_TRUE(std::isfinite(mk));
  EXPECT_GT(mk, 0.0);
}

// ---------------------------------------------------------------------
// RunConfig round-trip and strictness
// ---------------------------------------------------------------------

TEST(RunConfig, JsonRoundTripIsIdentity) {
  rc::RunConfig cfg;
  cfg.app = "lu";
  cfg.tiles = 6;
  cfg.ncpu = 1;
  cfg.ngpu = 3;
  cfg.sigma = 0.25;
  cfg.random_offer = true;
  cfg.comm_tile_bytes = 7.4e6;
  cfg.comm_bandwidth = 1.2e7;
  cfg.comm_latency_ms = 0.01;
  cfg.cluster_shards = 4;
  cfg.cluster_stale_ms = 2.5;
  cfg.cluster_hb_ms = 0.5;
  cfg.cluster_parallel = 2;
  cfg.scheduler = "heft";
  cfg.trainer = "ppo";
  cfg.episodes = 77;
  cfg.num_envs = 4;
  cfg.seed = 123456789012345678ULL;  // needs exact uint64 round-trip
  cfg.checkpoint_dir = "ckpt/run A";
  cfg.checkpoint_every = 10;
  cfg.resume = true;
  cfg.divergence_patience = 5;
  cfg.agent.hidden = 32;
  cfg.agent.lr = 5e-3;
  cfg.agent.entropy_beta = 0.0125;
  cfg.agent.squash_reward = false;
  cfg.agent.seed = 9;

  const std::string json = cfg.to_json();
  const rc::RunConfig back = rc::RunConfig::from_json(json);
  EXPECT_EQ(back.to_json(), json);
  EXPECT_EQ(back.app, "lu");
  EXPECT_EQ(back.tiles, 6);
  EXPECT_EQ(back.seed, 123456789012345678ULL);
  EXPECT_EQ(back.checkpoint_dir, "ckpt/run A");
  EXPECT_EQ(back.num_envs, 4);
  EXPECT_EQ(back.agent.hidden, 32);
  EXPECT_DOUBLE_EQ(back.agent.lr, 5e-3);
  EXPECT_FALSE(back.agent.squash_reward);
  EXPECT_DOUBLE_EQ(back.comm_tile_bytes, 7.4e6);
  EXPECT_DOUBLE_EQ(back.comm_latency_ms, 0.01);
  EXPECT_EQ(back.cluster_shards, 4);
  EXPECT_DOUBLE_EQ(back.cluster_stale_ms, 2.5);
  EXPECT_EQ(back.cluster_parallel, 2);
  EXPECT_TRUE(back.has_comm());
  EXPECT_FALSE(back.make_comm().is_free());
  EXPECT_NO_THROW(back.validate());
}

TEST(RunConfig, MissingKeysKeepDefaults) {
  const rc::RunConfig defaults;
  const rc::RunConfig parsed = rc::RunConfig::from_json("{}");
  EXPECT_EQ(parsed.to_json(), defaults.to_json());

  const rc::RunConfig partial =
      rc::RunConfig::from_json("{\"tiles\": 12, \"trainer\": \"ppo\"}");
  EXPECT_EQ(partial.tiles, 12);
  EXPECT_EQ(partial.trainer, "ppo");
  EXPECT_EQ(partial.app, defaults.app);
  EXPECT_EQ(partial.agent.hidden, defaults.agent.hidden);
}

TEST(RunConfig, StrictParsingRejectsMalformedDocuments) {
  // Unknown top-level key.
  EXPECT_THROW(rc::RunConfig::from_json("{\"bogus\": 1}"),
               std::invalid_argument);
  // Unknown nested agent key.
  EXPECT_THROW(rc::RunConfig::from_json("{\"agent\": {\"bogus\": 1}}"),
               std::invalid_argument);
  // Type mismatch.
  EXPECT_THROW(rc::RunConfig::from_json("{\"tiles\": \"eight\"}"),
               std::invalid_argument);
  // Non-integral integer field.
  EXPECT_THROW(rc::RunConfig::from_json("{\"tiles\": 2.5}"),
               std::invalid_argument);
  // Unknown schema tag.
  EXPECT_THROW(rc::RunConfig::from_json("{\"config\": \"readys-run/2\"}"),
               std::invalid_argument);
  // Trailing garbage after the document.
  const std::string valid = rc::RunConfig().to_json();
  EXPECT_THROW(rc::RunConfig::from_json(valid + " x"), std::invalid_argument);
  // Plain malformed JSON.
  EXPECT_THROW(rc::RunConfig::from_json("{\"tiles\": }"),
               std::invalid_argument);

  // validate() names bad cross-field values even when the JSON is fine.
  rc::RunConfig bad;
  bad.trainer = "sarsa";
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = rc::RunConfig();
  bad.num_envs = 0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  // Comm axis needs a positive bandwidth once tile bytes are nonzero.
  bad = rc::RunConfig();
  bad.comm_tile_bytes = 1e6;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = rc::RunConfig();
  bad.cluster_shards = 0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = rc::RunConfig();
  bad.cluster_hb_ms = 0.0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
}

TEST(RunConfig, EnvOverlayHonorsLegacyVariables) {
  ::setenv("READYS_TILES", "12", 1);
  ::setenv("READYS_NUM_ENVS", "4", 1);
  ::setenv("READYS_SIGMA", "0.4", 1);
  ::setenv("READYS_COMM_TILE_BYTES", "1000000", 1);
  ::setenv("READYS_COMM_BANDWIDTH", "2000000", 1);
  ::setenv("READYS_CLUSTER_SHARDS", "8", 1);
  ::setenv("READYS_CLUSTER_STALE_MS", "1.25", 1);
  const rc::RunConfig cfg = rc::RunConfig::from_env();
  ::unsetenv("READYS_TILES");
  ::unsetenv("READYS_NUM_ENVS");
  ::unsetenv("READYS_SIGMA");
  ::unsetenv("READYS_COMM_TILE_BYTES");
  ::unsetenv("READYS_COMM_BANDWIDTH");
  ::unsetenv("READYS_CLUSTER_SHARDS");
  ::unsetenv("READYS_CLUSTER_STALE_MS");
  EXPECT_EQ(cfg.tiles, 12);
  EXPECT_EQ(cfg.num_envs, 4);
  EXPECT_DOUBLE_EQ(cfg.sigma, 0.4);
  EXPECT_TRUE(cfg.has_comm());
  EXPECT_DOUBLE_EQ(cfg.comm_tile_bytes, 1e6);
  EXPECT_EQ(cfg.cluster_shards, 8);
  EXPECT_DOUBLE_EQ(cfg.cluster_stale_ms, 1.25);
  // Derived builders pull from the overlaid values.
  EXPECT_EQ(cfg.env_config().sigma, 0.4);
  EXPECT_EQ(cfg.train_options().episodes, cfg.episodes);
}
