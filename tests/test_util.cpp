#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <set>
#include <stdexcept>

#include "util/crc32.hpp"
#include "util/csv.hpp"
#include "util/env.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace ru = readys::util;

TEST(Rng, DeterministicStreams) {
  ru::Rng a(1);
  ru::Rng b(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, SplitIsIndependent) {
  ru::Rng a(1);
  ru::Rng child = a.split();
  // Parent and child streams must diverge.
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == child()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, UniformInRange) {
  ru::Rng rng(2);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(3.0, 7.0);
    EXPECT_GE(u, 3.0);
    EXPECT_LT(u, 7.0);
  }
}

TEST(Rng, UniformIndexCoversAllValues) {
  ru::Rng rng(3);
  std::set<std::size_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_index(5));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.rbegin(), 4u);
}

TEST(Rng, UniformIndexRejectsEmptyRange) {
  // Regression: uniform_index(0) used to silently return 0, a valid-looking
  // index into an empty collection. It must fail loudly instead.
  ru::Rng rng(3);
  EXPECT_THROW(rng.uniform_index(0), std::invalid_argument);
  // The generator stream is still usable after the failed call.
  EXPECT_LT(rng.uniform_index(7), 7u);
}

TEST(Rng, NormalMoments) {
  ru::Rng rng(4);
  ru::RunningStats stats;
  for (int i = 0; i < 50000; ++i) stats.add(rng.normal(10.0, 2.0));
  EXPECT_NEAR(stats.mean(), 10.0, 0.1);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.1);
}

TEST(Rng, ShuffleIsPermutation) {
  ru::Rng rng(5);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, StateRoundTripResumesExactStream) {
  // seed -> drain N -> snapshot -> keep draining. A second generator
  // restored from the snapshot must reproduce the tail exactly,
  // regardless of how the draws mix raw words, doubles, and normals.
  ru::Rng a(42);
  for (int i = 0; i < 257; ++i) {
    a();
    a.uniform();
    a.normal();
  }
  const ru::Rng::State snapshot = a.state();
  ru::Rng b(7);  // unrelated seed: everything must come from the state
  b.set_state(snapshot);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
    EXPECT_EQ(a.uniform(), b.uniform());
    EXPECT_EQ(a.normal(), b.normal());
  }
}

TEST(Rng, StateCapturesBoxMullerCache) {
  // normal() produces two values per Box-Muller round and caches the
  // second; a snapshot taken between the two must restore the cache, or
  // the restored stream would skip one normal and desynchronize.
  ru::Rng a(6);
  a.normal();  // cache now holds the second Box-Muller value
  ru::Rng b(8);
  b.set_state(a.state());
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a.normal(), b.normal());
}

TEST(Rng, SetStateLeavesOtherStreamsAlone) {
  ru::Rng a(10);
  ru::Rng c(10);
  ru::Rng b(11);
  b.set_state(b.state());  // self round-trip is a no-op
  (void)b;
  // `a` restored into a copy must not affect an independent generator.
  for (int i = 0; i < 50; ++i) EXPECT_EQ(a(), c());
}

TEST(Rng, SetStateRejectsAllZeroWords) {
  // xoshiro256** is stuck at zero forever from the all-zero state; a
  // corrupt checkpoint must not be able to install it.
  ru::Rng rng(1);
  EXPECT_THROW(rng.set_state(ru::Rng::State{0, 0, 0, 0, 0, 0}),
               std::invalid_argument);
}

TEST(Crc32, MatchesKnownVectors) {
  // Standard zlib/IEEE 802.3 check values.
  EXPECT_EQ(ru::crc32(""), 0x00000000u);
  EXPECT_EQ(ru::crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(ru::crc32("The quick brown fox jumps over the lazy dog"),
            0x414FA339u);
}

TEST(Crc32, SeedChainsIncrementalComputation) {
  const std::string data = "readys checkpoint payload";
  const auto whole = ru::crc32(data);
  const auto first = ru::crc32(data.substr(0, 10));
  EXPECT_EQ(ru::crc32(data.substr(10), first), whole);
}

TEST(Crc32, DetectsSingleBitFlip) {
  std::string data = "readys-ckpt/2\nepisode 7\n";
  const auto before = ru::crc32(data);
  data[5] = static_cast<char>(data[5] ^ 0x10);
  EXPECT_NE(ru::crc32(data), before);
}

TEST(Stats, SummaryKnownValues) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0, 5.0};
  const auto s = ru::summarize(xs);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_NEAR(s.stddev, std::sqrt(2.5), 1e-12);
  EXPECT_NEAR(s.ci95_half_width, 1.96 * std::sqrt(2.5 / 5.0), 1e-12);
}

TEST(Stats, EmptySampleIsZero) {
  const auto s = ru::summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(Stats, Quantile) {
  std::vector<double> xs{4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(ru::quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(ru::quantile(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(ru::quantile(xs, 0.5), 2.5);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ru::ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(100, [&](std::size_t i) { hits[i]++; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, SubmitReturnsFutureValue) {
  ru::ThreadPool pool(2);
  auto f = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, ParallelForPropagatesException) {
  ru::ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(10,
                                 [](std::size_t i) {
                                   if (i == 5) throw std::runtime_error("x");
                                 }),
               std::runtime_error);
}

TEST(Csv, WritesHeaderAndRows) {
  const auto path =
      (std::filesystem::temp_directory_path() / "readys_test.csv").string();
  {
    ru::CsvWriter csv(path, {"a", "b"});
    csv.row(std::vector<std::string>{"x", "y,z"});
    csv.row(std::vector<double>{1.5, 2.0});
    EXPECT_THROW(csv.row(std::vector<std::string>{"only-one"}),
                 std::invalid_argument);
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::getline(in, line);
  EXPECT_EQ(line, "x,\"y,z\"");
  std::filesystem::remove(path);
}

TEST(Csv, JoinAndSplit) {
  EXPECT_EQ(ru::join({"a", "b", "c"}, "-"), "a-b-c");
  const auto parts = ru::split("1,2,,3", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
}

TEST(Env, FallbacksAndParsing) {
  ::unsetenv("READYS_TEST_VAR");
  EXPECT_EQ(ru::env_int("READYS_TEST_VAR", 5), 5);
  ::setenv("READYS_TEST_VAR", "12", 1);
  EXPECT_EQ(ru::env_int("READYS_TEST_VAR", 5), 12);
  ::setenv("READYS_TEST_VAR", "0.5,1,2", 1);
  const auto xs = ru::env_double_list("READYS_TEST_VAR", {});
  ASSERT_EQ(xs.size(), 3u);
  EXPECT_DOUBLE_EQ(xs[0], 0.5);
  ::setenv("READYS_TEST_VAR", "garbage", 1);
  EXPECT_EQ(ru::env_int("READYS_TEST_VAR", 5), 5);
  ::unsetenv("READYS_TEST_VAR");
}

TEST(Table, AlignedRendering) {
  ru::Table t({"name", "value"});
  t.add_row({"x", ru::Table::num(1.23456, 2)});
  t.add_row({"longer-name", "9"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("1.23"), std::string::npos);
  EXPECT_NE(s.find("longer-name"), std::string::npos);
  EXPECT_NE(s.find("---"), std::string::npos);
}

namespace {

/// Stream insertion with a visible side effect, to prove dropped log
/// messages never pay for formatting.
struct CountingFormat {
  static inline int formats = 0;
};

std::ostream& operator<<(std::ostream& os, const CountingFormat&) {
  ++CountingFormat::formats;
  return os << "formatted";
}

}  // namespace

TEST(Logging, DroppedMessagesSkipFormatting) {
  const ru::LogLevel prev = ru::log_level();
  ru::set_log_level(ru::LogLevel::kWarn);
  CountingFormat::formats = 0;
  ru::log_debug() << CountingFormat{} << 123;
  ru::log_info() << CountingFormat{};
  EXPECT_EQ(CountingFormat::formats, 0);
  ru::log_warn() << CountingFormat{};
  EXPECT_EQ(CountingFormat::formats, 1);
  ru::set_log_level(prev);
}

TEST(Logging, LevelThresholdIsInclusive) {
  const ru::LogLevel prev = ru::log_level();
  ru::set_log_level(ru::LogLevel::kError);
  // Only the message at (or above) the threshold formats.
  CountingFormat::formats = 0;
  ru::log_warn() << CountingFormat{};
  ru::log_error() << CountingFormat{};
  EXPECT_EQ(CountingFormat::formats, 1);
  ru::set_log_level(prev);
}
