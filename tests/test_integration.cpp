// End-to-end integration tests: the full train -> evaluate -> compare
// pipeline the figure benches run, at smoke scale.

#include <gtest/gtest.h>

#include "core/readys.hpp"

namespace rc = readys::core;
namespace rs = readys::sim;
namespace rr = readys::rl;
namespace ru = readys::util;

namespace {

rr::AgentConfig smoke_config() {
  rr::AgentConfig cfg;
  cfg.hidden = 24;
  cfg.gcn_layers = 2;
  cfg.window = 1;
  cfg.seed = 17;
  return cfg;
}

}  // namespace

TEST(Integration, TrainedAgentBeatsRandomOnCholesky) {
  const auto graph = rc::make_graph(rc::App::kCholesky, 4);
  const auto costs = rc::make_costs(rc::App::kCholesky);
  const auto platform = rs::Platform::hybrid(2, 2);

  rr::ReadysAgent agent(4, smoke_config());
  agent.train(graph, platform, costs, {.episodes = 400, .sigma = 0.0});

  const auto readys_mk = agent.evaluate(graph, platform, costs, 0.0, 5, 500);
  const auto random_mk = rc::evaluate_makespans(
      graph, platform, costs, rc::random_factory(), 0.0, 10, 500);
  EXPECT_LT(ru::mean(readys_mk), ru::mean(random_mk));
}

TEST(Integration, ImprovementHarnessComputesRatios) {
  const auto graph = rc::make_graph(rc::App::kLu, 4);
  const auto costs = rc::make_costs(rc::App::kLu);
  const auto platform = rs::Platform::hybrid(2, 2);
  const auto result =
      rc::improvement_over(graph, platform, costs, rc::heft_factory(),
                           rc::random_factory(), 0.3, 5, 42);
  EXPECT_GT(result.improvement, 1.0);  // HEFT beats random
  EXPECT_EQ(result.a.count, 5u);
  EXPECT_EQ(result.b.count, 5u);
}

TEST(Integration, AllBaselinesRunOnEveryAppAndPlatform) {
  ru::ThreadPool pool(4);
  for (auto app : {rc::App::kCholesky, rc::App::kLu, rc::App::kQr}) {
    const auto graph = rc::make_graph(app, 4);
    const auto costs = rc::make_costs(app);
    for (const auto& platform :
         {rs::Platform::cpus(4), rs::Platform::hybrid(2, 2),
          rs::Platform::gpus(4)}) {
      for (const auto& factory :
           {rc::heft_factory(), rc::mct_factory(), rc::greedy_eft_factory(),
            rc::critical_path_factory()}) {
        const auto mks = rc::evaluate_makespans(graph, platform, costs,
                                                factory, 0.25, 4, 3, &pool);
        for (double mk : mks) EXPECT_GT(mk, 0.0);
      }
    }
  }
}

TEST(Integration, HeftDegradesWithNoiseMoreThanMct) {
  // The paper's central claim at the baseline level: HEFT's *relative*
  // makespan grows with sigma while MCT stays comparatively stable.
  // We verify the ratio mct/heft decreases as sigma grows.
  const auto graph = rc::make_graph(rc::App::kCholesky, 8);
  const auto costs = rc::make_costs(rc::App::kCholesky);
  const auto platform = rs::Platform::hybrid(2, 2);
  ru::ThreadPool pool(4);
  auto ratio = [&](double sigma) {
    const auto heft = rc::evaluate_makespans(graph, platform, costs,
                                             rc::heft_factory(), sigma, 20,
                                             11, &pool);
    const auto mct = rc::evaluate_makespans(graph, platform, costs,
                                            rc::mct_factory(), sigma, 20, 11,
                                            &pool);
    return ru::mean(mct) / ru::mean(heft);
  };
  EXPECT_LT(ratio(0.8), ratio(0.0) + 0.05);
}

TEST(Integration, QuickstartSnippetCompilesAndRuns) {
  // Mirrors the README quickstart (smaller budget).
  using namespace readys;
  auto graph = core::make_graph(core::App::kCholesky, 4);
  auto costs = core::make_costs(core::App::kCholesky);
  auto platform = sim::Platform::hybrid(2, 2);

  rl::AgentConfig cfg;
  cfg.hidden = 16;
  cfg.gcn_layers = 1;
  rl::ReadysAgent agent(graph.num_kernel_types(), cfg);
  agent.train(graph, platform, costs, {.episodes = 5, .sigma = 0.2});

  rl::ReadysScheduler policy(agent.net(), agent.config().window);
  const double mk =
      sim::simulate_makespan(graph, platform, costs, policy, 0.2, 42);
  EXPECT_GT(mk, 0.0);
}
