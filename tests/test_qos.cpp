// Tenant QoS suite: priority-class dequeue order, deficit-weighted fair
// sharing across tenants, token-bucket rate limiting at submit, and
// noisy-neighbor eviction under overload (the abusive tenant sheds
// first; unaffected tenants' decision traces stay bit-identical).

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/readys.hpp"

namespace rc = readys::core;
namespace rr = readys::rl;
namespace rv = readys::serve;

namespace {

rr::AgentConfig small_agent() {
  rr::AgentConfig cfg;
  cfg.hidden = 8;
  cfg.gcn_layers = 1;
  cfg.window = 1;
  cfg.seed = 3;
  return cfg;
}

rr::PolicyNet small_net(const rr::AgentConfig& cfg) {
  return rr::PolicyNet(rr::StateEncoder::node_feature_width(4),
                       rr::StateEncoder::kResourceFeatureWidth, cfg);
}

rv::SessionSpec spec_for(rc::App app, int tiles, std::uint64_t seed,
                         const std::string& tenant = "default",
                         rv::QosClass qos = rv::QosClass::kNormal) {
  rv::SessionSpec s;
  s.app = app;
  s.tiles = tiles;
  s.seed = seed;
  s.deadline_us = -1.0;
  s.tenant = tenant;
  s.qos = qos;
  return s;
}

void pump_dry(rv::DecisionService& svc) {
  for (int guard = 0; guard < 100000; ++guard) {
    if (svc.pump() == 0 && svc.queue_depth() == 0) return;
  }
  FAIL() << "service did not drain in 100k rounds";
}

}  // namespace

TEST(QosQueue, SingleTenantSingleClassIsFifo) {
  // The QosQueue must reduce exactly to the old FIFO for the pre-QoS
  // determinism pins to keep holding.
  const auto agent = small_agent();
  const auto net = small_net(agent);
  rv::ServiceConfig sc;
  sc.workers = 0;
  sc.max_active = 2;  // rounds of 2: completion order tracks admission
  sc.record_actions = true;
  rv::DecisionService svc(net, agent, sc);
  for (std::uint64_t s = 1; s <= 4; ++s) {
    svc.submit(spec_for(rc::App::kCholesky, 3, s));
  }
  pump_dry(svc);
  svc.shutdown();
  const auto results = svc.results();
  ASSERT_EQ(results.size(), 4u);
  for (const auto& r : results) {
    EXPECT_EQ(r.state, rv::SessionState::kCompleted);
  }
}

TEST(QosQueue, DeadlineClassDequeuesBeforeNormalBeforeBatch) {
  rv::QosQueue q;
  const auto agent = small_agent();
  const auto net = small_net(agent);
  const auto platform = readys::sim::Platform::hybrid(2, 2);
  auto graph = std::make_shared<const readys::dag::TaskGraph>(
      rc::make_graph(rc::App::kCholesky, 3));
  auto make = [&](std::uint64_t id, rv::QosClass cls) {
    auto spec = spec_for(rc::App::kCholesky, 3, id, "t", cls);
    return std::make_unique<rv::Session>(id, spec, platform, graph, 1, 0,
                                         true);
  };
  q.push_back({make(1, rv::QosClass::kBatch), {}});
  q.push_back({make(2, rv::QosClass::kNormal), {}});
  q.push_back({make(3, rv::QosClass::kDeadline), {}});
  q.push_back({make(4, rv::QosClass::kNormal), {}});

  std::vector<std::unique_ptr<rv::Session>> out;
  q.pop_due(rv::QosQueue::Clock::now(), 4, out);
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out[0]->id(), 3u);  // deadline first
  EXPECT_EQ(out[1]->id(), 2u);  // then normal, FIFO
  EXPECT_EQ(out[2]->id(), 4u);
  EXPECT_EQ(out[3]->id(), 1u);  // batch last
}

TEST(QosQueue, DeficitRoundRobinInterleavesTenantsFairly) {
  rv::QosQueue q;
  const auto platform = readys::sim::Platform::hybrid(2, 2);
  auto graph = std::make_shared<const readys::dag::TaskGraph>(
      rc::make_graph(rc::App::kCholesky, 3));
  auto push = [&](std::uint64_t id, const std::string& tenant) {
    auto spec = spec_for(rc::App::kCholesky, 3, id, tenant);
    q.push_back({std::make_unique<rv::Session>(id, spec, platform, graph, 1,
                                               0, true),
                 {}});
  };
  q.set_weight("a", 1.0);
  q.set_weight("b", 1.0);
  // Tenant a floods first; b arrives after with 2 entries.
  for (std::uint64_t id = 1; id <= 6; ++id) push(id, "a");
  push(10, "b");
  push(11, "b");

  std::vector<std::unique_ptr<rv::Session>> out;
  q.pop_due(rv::QosQueue::Clock::now(), 4, out);
  ASSERT_EQ(out.size(), 4u);
  // Equal weights: the first 4 pops split 2/2 across tenants instead of
  // draining the flooder first.
  int from_b = 0;
  for (const auto& s : out) {
    if (s->spec().tenant == "b") ++from_b;
  }
  EXPECT_EQ(from_b, 2);
}

TEST(QosQueue, EvictForShedsTheMostBackloggedTenant) {
  rv::QosQueue q;
  const auto platform = readys::sim::Platform::hybrid(2, 2);
  auto graph = std::make_shared<const readys::dag::TaskGraph>(
      rc::make_graph(rc::App::kCholesky, 3));
  auto push = [&](std::uint64_t id, const std::string& tenant) {
    auto spec = spec_for(rc::App::kCholesky, 3, id, tenant);
    q.push_back({std::make_unique<rv::Session>(id, spec, platform, graph, 1,
                                               0, true),
                 {}});
  };
  for (std::uint64_t id = 1; id <= 5; ++id) push(id, "hog");
  push(10, "small");

  // A third tenant submits into the full queue: the hog's NEWEST entry
  // is the victim (its oldest work keeps its place).
  auto victim = q.evict_for("victim-side", rv::QosClass::kNormal);
  ASSERT_NE(victim, nullptr);
  EXPECT_EQ(victim->spec().tenant, "hog");
  EXPECT_EQ(victim->id(), 5u);
  EXPECT_EQ(q.queued_for("hog"), 4u);
  EXPECT_EQ(q.queued_for("small"), 1u);

  // The hog itself submitting cannot evict anyone — it IS the backlog.
  for (std::uint64_t id = 6; id <= 12; ++id) push(id, "hog");
  EXPECT_EQ(q.evict_for("hog", rv::QosClass::kNormal), nullptr);
}

TEST(ServeQos, RateLimitedTenantShedsAtSubmit) {
  const auto agent = small_agent();
  const auto net = small_net(agent);
  rv::ServiceConfig sc;
  sc.workers = 0;
  // 1-token bucket, negligible refill: the second immediate submit must
  // shed regardless of timing.
  sc.default_tenant.rate_per_s = 0.001;
  sc.default_tenant.burst = 1.0;
  rv::DecisionService svc(net, agent, sc);

  const auto a = svc.submit(spec_for(rc::App::kCholesky, 3, 1));
  const auto b = svc.submit(spec_for(rc::App::kCholesky, 3, 2));
  EXPECT_TRUE(a.admitted);
  EXPECT_FALSE(b.admitted);
  EXPECT_EQ(b.reason, "rate limited");
  EXPECT_EQ(svc.counters().tenant_shed, 1u);
  const auto tc = svc.tenant_counters();
  ASSERT_EQ(tc.count("default"), 1u);
  EXPECT_EQ(tc.at("default").admitted, 1u);
  EXPECT_EQ(tc.at("default").shed, 1u);
  pump_dry(svc);
  svc.shutdown();
}

TEST(ServeQos, PerTenantPolicyOverridesDefault) {
  const auto agent = small_agent();
  const auto net = small_net(agent);
  rv::ServiceConfig sc;
  sc.workers = 0;
  sc.default_tenant.rate_per_s = 0.001;  // everyone else: 1 then shed
  sc.default_tenant.burst = 1.0;
  sc.tenants["vip"] = rv::TenantPolicy{};  // unlimited
  rv::DecisionService svc(net, agent, sc);

  EXPECT_TRUE(svc.submit(spec_for(rc::App::kCholesky, 3, 1, "vip")).admitted);
  EXPECT_TRUE(svc.submit(spec_for(rc::App::kCholesky, 3, 2, "vip")).admitted);
  EXPECT_TRUE(svc.submit(spec_for(rc::App::kCholesky, 3, 3, "std")).admitted);
  EXPECT_FALSE(svc.submit(spec_for(rc::App::kCholesky, 3, 4, "std")).admitted);
  pump_dry(svc);
  svc.shutdown();
}

TEST(ServeQos, NoisyNeighborEvictionKeepsVictimTenantFlowing) {
  const auto agent = small_agent();
  const auto net = small_net(agent);
  rv::ServiceConfig sc;
  sc.workers = 0;
  sc.queue_capacity = 4;
  sc.record_actions = true;
  rv::DecisionService svc(net, agent, sc);

  // The hog fills the whole queue...
  for (std::uint64_t s = 1; s <= 4; ++s) {
    EXPECT_TRUE(
        svc.submit(spec_for(rc::App::kCholesky, 3, s, "hog")).admitted);
  }
  // ...and the small tenant still gets in: the hog's newest entry sheds.
  const auto adm = svc.submit(spec_for(rc::App::kCholesky, 3, 100, "small"));
  EXPECT_TRUE(adm.admitted);
  EXPECT_EQ(svc.counters().tenant_shed, 1u);

  pump_dry(svc);
  svc.shutdown();
  const auto tc = svc.tenant_counters();
  EXPECT_EQ(tc.at("hog").shed, 1u);
  EXPECT_EQ(tc.at("hog").completed, 3u);
  EXPECT_EQ(tc.at("small").completed, 1u);
  // The evicted session retired as kShed with a typed reason.
  std::size_t shed_seen = 0;
  for (const auto& r : svc.results()) {
    if (r.state == rv::SessionState::kShed) {
      ++shed_seen;
      EXPECT_EQ(r.tenant, "hog");
      EXPECT_NE(r.error.find("evicted"), std::string::npos);
    }
  }
  EXPECT_EQ(shed_seen, 1u);
}

TEST(ServeQos, EvictionLeavesUnaffectedTenantTraceBitIdentical) {
  const auto agent = small_agent();
  const auto net = small_net(agent);

  // Control: the small tenant runs alone (sampling mode — drift shows).
  auto run_small = [&](bool with_hog) {
    rv::ServiceConfig sc;
    sc.workers = 0;
    sc.queue_capacity = 8;
    sc.record_actions = true;
    sc.greedy = false;
    rv::DecisionService svc(net, agent, sc);
    if (with_hog) {
      for (std::uint64_t s = 1; s <= 8; ++s) {
        svc.submit(spec_for(rc::App::kLu, 3, s, "hog",
                            rv::QosClass::kBatch));
      }
    }
    svc.submit(spec_for(rc::App::kCholesky, 3, 42, "small"));
    if (with_hog) {
      // Overflow: the hog sheds to admit one more small session... which
      // must not perturb the existing small session's decisions.
      svc.submit(spec_for(rc::App::kCholesky, 3, 43, "small"));
    }
    pump_dry(svc);
    svc.shutdown();
    for (const auto& r : svc.results()) {
      if (r.tenant == "small" && r.id <= 9) return r.actions;
    }
    return std::vector<std::uint32_t>{};
  };

  const auto alone = run_small(false);
  const auto crowded = run_small(true);
  ASSERT_FALSE(alone.empty());
  EXPECT_EQ(alone, crowded);
}

TEST(ServeQos, QueueFullStillShedsSingleTenantSubmitter) {
  // Single-tenant overload keeps the old behavior: the incoming session
  // sheds with "queue full" (there is no neighbor to evict).
  const auto agent = small_agent();
  const auto net = small_net(agent);
  rv::ServiceConfig sc;
  sc.workers = 0;
  sc.queue_capacity = 2;
  rv::DecisionService svc(net, agent, sc);
  EXPECT_TRUE(svc.submit(spec_for(rc::App::kCholesky, 3, 1)).admitted);
  EXPECT_TRUE(svc.submit(spec_for(rc::App::kCholesky, 3, 2)).admitted);
  const auto c = svc.submit(spec_for(rc::App::kCholesky, 3, 3));
  EXPECT_FALSE(c.admitted);
  EXPECT_EQ(c.reason, "queue full");
  EXPECT_EQ(svc.counters().tenant_shed, 0u);
  pump_dry(svc);
  svc.shutdown();
}
