#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "dag/cholesky.hpp"
#include "obs/obs.hpp"
#include "rl/agent.hpp"
#include "rl/readys_scheduler.hpp"
#include "sched/guarded.hpp"
#include "sched/mct.hpp"
#include "sched/scheduler.hpp"
#include "sim/simulator.hpp"

namespace rd = readys::dag;
namespace ro = readys::obs;
namespace rr = readys::rl;
namespace rs = readys::sim;
namespace rx = readys::sched;

namespace {

/// Inner scheduler whose failure mode is programmable per decide() call.
/// kDelegate answers with a correct MCT decision, so interleaving modes
/// exercises the consecutive-strike counter.
class FaultyScheduler : public rs::Scheduler {
 public:
  enum class Mode { kDelegate, kThrow, kBogusResource, kDuplicateTask };

  explicit FaultyScheduler(std::vector<Mode> script)
      : script_(std::move(script)) {}

  void reset(const rs::EngineView& engine) override {
    if (throw_on_reset_) throw std::runtime_error("reset boom");
    calls_ = 0;
    inner_.reset(engine);
  }

  std::vector<rs::Assignment> decide(const rs::EngineView& engine) override {
    const Mode mode =
        script_.empty() ? Mode::kDelegate
                        : script_[std::min(calls_, script_.size() - 1)];
    ++calls_;
    switch (mode) {
      case Mode::kThrow:
        throw std::runtime_error("policy exploded");
      case Mode::kBogusResource: {
        // First ready task onto a resource that does not exist.
        for (readys::dag::TaskId t = 0; t < engine.graph().num_tasks(); ++t) {
          if (engine.is_ready(t)) {
            return {{t, static_cast<rs::ResourceId>(engine.platform().size() +
                                                    5)}};
          }
        }
        return {};
      }
      case Mode::kDuplicateTask: {
        for (readys::dag::TaskId t = 0; t < engine.graph().num_tasks(); ++t) {
          if (engine.is_ready(t)) return {{t, 0}, {t, 1}};
        }
        return {};
      }
      case Mode::kDelegate:
        break;
    }
    // One-shot reset + decide so the suggestion is always derived from
    // the current engine state — the guard's own fallback decisions
    // would desync a persistently-stateful MCT instance.
    inner_.reset(engine);
    return inner_.decide(engine);
  }

  std::string name() const override { return "faulty"; }

  void set_throw_on_reset(bool v) { throw_on_reset_ = v; }

 private:
  std::vector<Mode> script_;
  std::size_t calls_ = 0;
  bool throw_on_reset_ = false;
  rx::MctScheduler inner_;
};

using Mode = FaultyScheduler::Mode;

double mct_reference_makespan() {
  const auto g = rd::cholesky_graph(4);
  rx::MctScheduler mct;
  return rs::simulate_makespan(g, rs::Platform::hybrid(2, 2),
                               rs::CostModel::cholesky(), mct, 0.0, 1);
}

}  // namespace

TEST(Guarded, RegistryResolvesGuardedPrefix) {
  EXPECT_TRUE(rx::registry().contains("guarded:mct"));
  EXPECT_TRUE(rx::registry().contains("guarded:heft"));
  EXPECT_FALSE(rx::registry().contains("guarded:no-such-policy"));
  auto sched = rx::make_scheduler("guarded:mct");
  ASSERT_NE(sched, nullptr);
  EXPECT_EQ(sched->name(), "guarded(MCT)");
  // The prefix composes: a doubly-wrapped scheduler is legal (if silly).
  auto nested = rx::make_scheduler("guarded:guarded:mct");
  EXPECT_EQ(nested->name(), "guarded(guarded(MCT))");
  EXPECT_THROW(rx::make_scheduler("guarded:no-such-policy"),
               std::invalid_argument);
}

TEST(Guarded, WellBehavedInnerRunsWithoutFallback) {
  const auto g = rd::cholesky_graph(4);
  auto sched = rx::make_scheduler("guarded:mct");
  rs::Simulator sim(g, rs::Platform::hybrid(2, 2), rs::CostModel::cholesky(),
                    {0.0, 1});
  const auto result = sim.run(*sched);
  EXPECT_EQ(result.trace.validate(g, rs::Platform::hybrid(2, 2)), "");
  EXPECT_DOUBLE_EQ(result.makespan, mct_reference_makespan());
  auto* guarded = dynamic_cast<rx::GuardedScheduler*>(sched.get());
  ASSERT_NE(guarded, nullptr);
  EXPECT_EQ(guarded->fallback_decisions(), 0u);
  EXPECT_FALSE(guarded->degraded());
}

TEST(Guarded, ThrowingInnerCompletesEpisodeOnMctFallback) {
  const auto g = rd::cholesky_graph(4);
  const auto p = rs::Platform::hybrid(2, 2);
  rx::GuardedScheduler sched(
      std::make_unique<FaultyScheduler>(std::vector<Mode>{Mode::kThrow}));
  rs::Simulator sim(g, p, rs::CostModel::cholesky(), {0.0, 1});
  const auto result = sim.run(sched);
  EXPECT_EQ(result.trace.validate(g, p), "");
  EXPECT_EQ(result.trace.size(), g.num_tasks());
  EXPECT_GT(sched.fallback_decisions(), 0u);
  // Degraded quality is acceptable; a hung or invalid schedule is not.
  // (One-shot MCT re-derives each decision from current engine state, so
  // it does not reproduce a persistent MCT run's makespan exactly.)
  EXPECT_GT(result.makespan, 0.0);
  EXPECT_NE(sched.last_fault().find("policy exploded"), std::string::npos);
}

TEST(Guarded, InvalidAssignmentsAreCaughtBeforeTheEngineSeesThem) {
  const auto g = rd::cholesky_graph(4);
  const auto p = rs::Platform::hybrid(2, 2);
  for (const Mode bad : {Mode::kBogusResource, Mode::kDuplicateTask}) {
    rx::GuardedScheduler sched(
        std::make_unique<FaultyScheduler>(std::vector<Mode>{bad}));
    rs::Simulator sim(g, p, rs::CostModel::cholesky(), {0.0, 1});
    const auto result = sim.run(sched);
    EXPECT_EQ(result.trace.validate(g, p), "");
    EXPECT_GT(sched.fallback_decisions(), 0u);
    EXPECT_NE(sched.last_fault().find("invalid batch"), std::string::npos);
  }
}

TEST(Guarded, ConsecutiveFailuresDegradePermanently) {
  const auto g = rd::cholesky_graph(4);
  const auto p = rs::Platform::hybrid(2, 2);
  rx::GuardedScheduler sched(
      std::make_unique<FaultyScheduler>(std::vector<Mode>{Mode::kThrow}),
      rx::GuardedScheduler::Options{/*max_strikes=*/2});
  rs::Simulator sim(g, p, rs::CostModel::cholesky(), {0.0, 1});
  const auto result = sim.run(sched);
  EXPECT_EQ(result.trace.validate(g, p), "");
  EXPECT_TRUE(sched.degraded());
}

TEST(Guarded, SuccessResetsTheStrikeCounter) {
  // Failures interleaved with good decisions never become "consecutive",
  // so the inner scheduler keeps being consulted.
  const auto g = rd::cholesky_graph(4);
  const auto p = rs::Platform::hybrid(2, 2);
  std::vector<Mode> script;
  for (int i = 0; i < 40; ++i) {
    script.push_back(i % 2 == 0 ? Mode::kThrow : Mode::kDelegate);
  }
  rx::GuardedScheduler sched(std::make_unique<FaultyScheduler>(script),
                             rx::GuardedScheduler::Options{/*max_strikes=*/2});
  rs::Simulator sim(g, p, rs::CostModel::cholesky(), {0.0, 1});
  const auto result = sim.run(sched);
  EXPECT_EQ(result.trace.validate(g, p), "");
  EXPECT_GT(sched.fallback_decisions(), 0u);
  EXPECT_FALSE(sched.degraded());
}

TEST(Guarded, InnerResetThrowingRoutesTheEpisodeToFallback) {
  const auto g = rd::cholesky_graph(4);
  const auto p = rs::Platform::hybrid(2, 2);
  auto inner = std::make_unique<FaultyScheduler>(std::vector<Mode>{});
  inner->set_throw_on_reset(true);
  rx::GuardedScheduler sched(std::move(inner));
  rs::Simulator sim(g, p, rs::CostModel::cholesky(), {0.0, 1});
  const auto result = sim.run(sched);
  EXPECT_EQ(result.trace.validate(g, p), "");
  EXPECT_EQ(result.trace.size(), g.num_tasks());
  EXPECT_GT(sched.fallback_decisions(), 0u);
}

TEST(Guarded, NanPolicyCompletesEpisodeViaFallbackWithMetric) {
  // The acceptance scenario: a READYS policy whose weights went NaN must
  // still finish the episode (on MCT quality) instead of crashing, and
  // every rescued decision must show up in sched.fallback_decisions.
  const auto g = rd::cholesky_graph(4);
  const auto p = rs::Platform::hybrid(2, 2);

  rr::AgentConfig cfg;
  cfg.hidden = 8;
  cfg.gcn_layers = 1;
  cfg.window = 1;
  cfg.seed = 3;
  rr::ReadysAgent agent(4, cfg);
  // Poison every weight: the forward pass then yields NaN logits and the
  // scheduler throws from its finite-probability check.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  for (auto& [name, var] : agent.net().named_parameters()) {
    auto& t = var.mutable_value();
    for (std::size_t i = 0; i < t.size(); ++i) t[i] = nan;
  }

  const bool installed = ro::install(ro::TelemetryConfig{});
  const std::uint64_t before =
      ro::telemetry() ? ro::telemetry()->sched_fallbacks.total() : 0;

  rx::GuardedScheduler sched(std::make_unique<rr::ReadysScheduler>(
      agent.net(), cfg.window, /*greedy=*/true, /*seed=*/4));
  rs::Simulator sim(g, p, rs::CostModel::cholesky(), {0.0, 1});
  const auto result = sim.run(sched);

  EXPECT_EQ(result.trace.validate(g, p), "");
  EXPECT_EQ(result.trace.size(), g.num_tasks());
  EXPECT_GT(sched.fallback_decisions(), 0u);
  EXPECT_NE(sched.last_fault().find("non-finite"), std::string::npos);
  if (ro::telemetry() != nullptr) {
    EXPECT_GT(ro::telemetry()->sched_fallbacks.total(), before);
  }
  if (installed) ro::shutdown();
}

// ---------------------------------------------------------------------
// Registry option syntax: guarded(budget_us=...,max_strikes=...):<inner>
// ---------------------------------------------------------------------

TEST(GuardedSpec, BudgetAndStrikesParseFromRegistryName) {
  auto sched = rx::make_scheduler("guarded(budget_us=500,max_strikes=2):mct");
  auto* guarded = dynamic_cast<rx::GuardedScheduler*>(sched.get());
  ASSERT_NE(guarded, nullptr);
  EXPECT_DOUBLE_EQ(guarded->options().decide_budget_ms, 0.5);
  EXPECT_EQ(guarded->options().max_strikes, 2);
  EXPECT_EQ(sched->name(), "guarded(MCT)");
}

TEST(GuardedSpec, BudgetMsVariantAndDefaults) {
  auto sched = rx::make_scheduler("guarded(budget_ms=3):heft");
  auto* guarded = dynamic_cast<rx::GuardedScheduler*>(sched.get());
  ASSERT_NE(guarded, nullptr);
  EXPECT_DOUBLE_EQ(guarded->options().decide_budget_ms, 3.0);
  EXPECT_EQ(guarded->options().max_strikes, rx::GuardedScheduler::Options{}.max_strikes);

  // The bare prefix keeps the all-default options.
  auto plain = rx::make_scheduler("guarded:mct");
  auto* plain_guarded = dynamic_cast<rx::GuardedScheduler*>(plain.get());
  ASSERT_NE(plain_guarded, nullptr);
  EXPECT_DOUBLE_EQ(plain_guarded->options().decide_budget_ms, 0.0);
}

TEST(GuardedSpec, OptionSyntaxComposesWithNesting) {
  auto sched = rx::make_scheduler("guarded(budget_ms=1):guarded:mct");
  auto* outer = dynamic_cast<rx::GuardedScheduler*>(sched.get());
  ASSERT_NE(outer, nullptr);
  EXPECT_DOUBLE_EQ(outer->options().decide_budget_ms, 1.0);
  EXPECT_EQ(sched->name(), "guarded(guarded(MCT))");
}

TEST(GuardedSpec, MalformedSpecsAreRejected) {
  // contains() answers false for malformed specs; make() names the
  // problem in the exception instead of silently defaulting.
  EXPECT_FALSE(rx::registry().contains("guarded(budget_us=500:mct"));
  EXPECT_FALSE(rx::registry().contains("guarded(budget_us=abc):mct"));
  EXPECT_FALSE(rx::registry().contains("guarded(unknown_knob=1):mct"));
  EXPECT_FALSE(rx::registry().contains("guarded(max_strikes=0):mct"));
  EXPECT_FALSE(rx::registry().contains("guarded(budget_us=1)mct"));
  EXPECT_FALSE(rx::registry().contains("guardedfoo"));
  EXPECT_THROW(rx::make_scheduler("guarded(budget_us=abc):mct"),
               std::invalid_argument);
  EXPECT_THROW(rx::make_scheduler("guarded(unknown_knob=1):mct"),
               std::invalid_argument);
  // A well-formed option list around an unknown inner still fails on
  // the inner, like the bare prefix does.
  EXPECT_FALSE(rx::registry().contains("guarded(budget_us=1):no-such"));
  EXPECT_THROW(rx::make_scheduler("guarded(budget_us=1):no-such"),
               std::invalid_argument);
}

TEST(GuardedSpec, BudgetedSpecDegradesSlowInnerToMct) {
  // A registry-built guarded scheduler with an unmeetable budget rescues
  // every decision via one-shot MCT and still completes the episode with
  // a valid trace. (The rescued trajectory need not equal a pure
  // MctScheduler run: per-decision one-shot rescue and a stateful MCT
  // episode legitimately diverge — we pin completion + determinism.)
  const auto g = rd::cholesky_graph(4);
  auto run_once = [&g] {
    auto sched = rx::make_scheduler("guarded(budget_us=0.001):greedy");
    rs::Simulator sim(g, rs::Platform::hybrid(2, 2), rs::CostModel::cholesky(),
                      {0.0, 1});
    const auto result = sim.run(*sched);
    EXPECT_EQ(result.trace.validate(g, rs::Platform::hybrid(2, 2)), "");
    auto* guarded = dynamic_cast<rx::GuardedScheduler*>(sched.get());
    EXPECT_NE(guarded, nullptr);
    if (guarded != nullptr) EXPECT_GT(guarded->fallback_decisions(), 0u);
    return result.makespan;
  };
  const double first = run_once();
  EXPECT_GT(first, 0.0);
  EXPECT_DOUBLE_EQ(first, run_once());  // degraded path is deterministic
}
