// Shutdown-vs-producer races in the async actor–learner plumbing and
// the decision service, aimed at the tsan preset: every test here spins
// real threads against close/fail/abort edges and must be data-race
// free, deadlock free, and leak free.

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/readys.hpp"
#include "rl/async.hpp"

namespace rc = readys::core;
namespace rr = readys::rl;
namespace rv = readys::serve;
namespace rs = readys::sim;
namespace ru = readys::util;

namespace {

rr::EpisodeRollout rollout(int index) {
  rr::EpisodeRollout r;
  r.index = index;
  return r;
}

}  // namespace

TEST(AsyncStress, CloseUnblocksProducersStuckOnFullQueue) {
  rr::EpisodeQueue queue(2);
  ASSERT_TRUE(queue.push(rollout(0)));
  ASSERT_TRUE(queue.push(rollout(1)));

  // Four producers block on the full queue; close() must release every
  // one of them with push() == false, without a consumer ever popping.
  std::atomic<int> rejected{0};
  std::vector<std::thread> producers;
  for (int t = 0; t < 4; ++t) {
    producers.emplace_back([&queue, &rejected, t] {
      if (!queue.push(rollout(10 + t))) {
        rejected.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  queue.close();
  for (auto& p : producers) p.join();
  EXPECT_EQ(rejected.load(), 4);

  // The two accepted episodes still drain, then pop reports closed.
  rr::EpisodeRollout out;
  EXPECT_TRUE(queue.pop(out));
  EXPECT_TRUE(queue.pop(out));
  EXPECT_FALSE(queue.pop(out));
}

TEST(AsyncStress, FailWakesConsumerAndProducers) {
  rr::EpisodeQueue queue(1);
  ASSERT_TRUE(queue.push(rollout(0)));

  // No consumer runs, so the queue stays full and the producer is
  // guaranteed to be parked in push() when fail() lands.
  std::thread blocked_producer([&queue] {
    EXPECT_FALSE(queue.push(rollout(1)));  // full, then failed
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  queue.fail(std::make_exception_ptr(std::runtime_error("actor died")));
  blocked_producer.join();

  // A failed queue aborts the drain: pop() reports false even though an
  // item is still buffered, and the stashed exception rethrows.
  rr::EpisodeRollout out;
  EXPECT_FALSE(queue.pop(out));
  ASSERT_NE(queue.error(), nullptr);
  EXPECT_THROW(std::rethrow_exception(queue.error()), std::runtime_error);
}

TEST(AsyncStress, HammeredPushPopCloseRace) {
  // Many producers, one consumer, and a closer all racing. Nothing to
  // assert beyond "terminates without tripping tsan": every push either
  // lands or reports closed, every popped episode was pushed.
  for (int round = 0; round < 8; ++round) {
    rr::EpisodeQueue queue(3);
    std::atomic<int> pushed{0};
    std::vector<std::thread> producers;
    for (int t = 0; t < 4; ++t) {
      producers.emplace_back([&queue, &pushed, t] {
        for (int i = 0; i < 64; ++i) {
          if (!queue.push(rollout(t * 1000 + i))) return;
          pushed.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
    std::atomic<int> popped{0};
    std::thread consumer([&queue, &popped] {
      rr::EpisodeRollout out;
      while (queue.pop(out)) popped.fetch_add(1, std::memory_order_relaxed);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(round));
    queue.close();
    for (auto& p : producers) p.join();
    consumer.join();
    EXPECT_LE(popped.load(), pushed.load());
  }
}

TEST(AsyncStress, ActorPoolSurvivesEarlyDestruction) {
  // Destroying the pool mid-run must stop the claim loop, close the
  // queue, and join the actor threads — even though most indices were
  // never claimed and the consumer walked away early.
  const auto graph = rc::make_graph(rc::App::kCholesky, 3);
  const auto platform = rs::Platform::hybrid(1, 1);
  const auto costs = rc::make_costs(rc::App::kCholesky);
  rr::SchedulingEnv::Config env_cfg;
  env_cfg.window = 1;

  for (int round = 0; round < 4; ++round) {
    ru::ThreadPool pool;
    rr::VecEnv envs(graph, platform, costs, env_cfg, 2, &pool);
    rr::EpisodeQueue queue(2);
    rr::ActorPool::Options opts;
    opts.episodes = 1000;  // far more than we will consume
    opts.actors = 2;
    {
      rr::ActorPool actors(
          envs, queue,
          [](std::size_t, const rr::Observation&, ru::Rng&) {
            return rr::ActorPool::Act{};  // always action 0
          },
          opts);
      actors.release_below(opts.episodes);  // free mode: claim anything
      rr::EpisodeRollout out;
      // Consume a couple of episodes, then destroy the pool with
      // actors still producing.
      ASSERT_TRUE(queue.pop(out));
      ASSERT_TRUE(queue.pop(out));
    }
    rr::EpisodeRollout leftover;
    while (queue.pop(leftover)) {
    }
    EXPECT_EQ(queue.error(), nullptr);
  }
}

TEST(AsyncStress, ServiceAbortRacesSubmitters) {
  // Threads keep submitting while the main thread pulls the plug. Every
  // submission must resolve to exactly one disposition (completed,
  // aborted, or shed) — admissions and retirements must balance even
  // when abort lands mid-submit.
  rr::AgentConfig agent;
  agent.hidden = 8;
  agent.gcn_layers = 1;
  agent.window = 1;
  agent.seed = 3;
  rr::PolicyNet net(rr::StateEncoder::node_feature_width(4),
                    rr::StateEncoder::kResourceFeatureWidth, agent);

  for (int round = 0; round < 3; ++round) {
    rv::ServiceConfig sc;
    sc.workers = 2;
    sc.max_active = 2;
    sc.queue_capacity = 8;
    rv::DecisionService svc(net, agent, sc);

    std::atomic<std::uint64_t> admitted{0};
    std::vector<std::thread> submitters;
    for (int t = 0; t < 3; ++t) {
      submitters.emplace_back([&svc, &admitted, t] {
        for (int i = 0; i < 16; ++i) {
          rv::SessionSpec spec;
          spec.tiles = 3;
          spec.seed = static_cast<std::uint64_t>(t * 100 + i);
          spec.deadline_us = -1.0;
          const auto a = svc.submit(spec);
          if (a.admitted) admitted.fetch_add(1, std::memory_order_relaxed);
          if (a.reason == "stopped") return;
        }
      });
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5 * round));
    svc.abort_shutdown();
    for (auto& s : submitters) s.join();

    const auto c = svc.counters();
    EXPECT_EQ(admitted.load(), c.admitted);
    EXPECT_EQ(c.completed + c.quarantined + c.aborted, c.admitted);
    EXPECT_EQ(svc.results().size(), static_cast<std::size_t>(c.admitted));
    EXPECT_TRUE(svc.idle());
  }
}

TEST(AsyncStress, ServiceDrainRacesSubmitters) {
  rr::AgentConfig agent;
  agent.hidden = 8;
  agent.gcn_layers = 1;
  agent.window = 1;
  agent.seed = 3;
  rr::PolicyNet net(rr::StateEncoder::node_feature_width(4),
                    rr::StateEncoder::kResourceFeatureWidth, agent);

  rv::ServiceConfig sc;
  sc.workers = 2;
  sc.queue_capacity = 16;
  rv::DecisionService svc(net, agent, sc);

  std::vector<std::thread> submitters;
  for (int t = 0; t < 2; ++t) {
    submitters.emplace_back([&svc, t] {
      for (int i = 0; i < 10; ++i) {
        rv::SessionSpec spec;
        spec.tiles = 3;
        spec.seed = static_cast<std::uint64_t>(t * 50 + i);
        spec.deadline_us = -1.0;
        svc.submit(spec);
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  svc.drain();
  for (auto& s : submitters) s.join();
  svc.wait_idle();

  // Everything admitted before the drain completed; nothing aborted.
  const auto c = svc.counters();
  EXPECT_EQ(c.completed, c.admitted);
  EXPECT_EQ(c.aborted, 0u);
  svc.shutdown();
}
