// Equivalence guarantee for the simulator hot-path overhaul: the
// engine's observable behaviour (full traces and makespans) must be
// bit-identical to the pre-overhaul O(n)-per-query seed engine.
//
// The golden table below was recorded by running the SEED implementation
// (linear ready-set scans, full passes over running_ in advance()) over
// random DAGs and the paper's factorizations x {HEFT, MCT, random,
// greedy-EFT} x sigma in {0, 0.1, 0.5} x seeds. Any divergence — a
// reordered tie, a drifted double, a different decision — changes the
// FNV-1a trace hash and fails here.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <memory>

#include "dag/cholesky.hpp"
#include "dag/lu.hpp"
#include "dag/qr.hpp"
#include "dag/random_dag.hpp"
#include "sched/greedy_eft.hpp"
#include "sched/heft.hpp"
#include "sched/mct.hpp"
#include "sched/random_sched.hpp"
#include "sim/simulator.hpp"

namespace rd = readys::dag;
namespace rs = readys::sim;
namespace rx = readys::sched;
namespace ru = readys::util;

namespace {

std::uint64_t fnv1a(std::uint64_t h, const void* data, std::size_t n) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

std::uint64_t trace_hash(const rs::Trace& trace) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const auto& e : trace.entries()) {
    h = fnv1a(h, &e.task, sizeof(e.task));
    h = fnv1a(h, &e.resource, sizeof(e.resource));
    h = fnv1a(h, &e.start, sizeof(e.start));
    h = fnv1a(h, &e.finish, sizeof(e.finish));
  }
  return h;
}

struct Case {
  rd::TaskGraph graph;
  rs::CostModel costs;
  rs::Platform platform;
};

/// The graph/cost/platform combinations the goldens were recorded on.
/// Random DAGs are regenerated from fixed seeds, so they are as stable
/// as the factorization generators.
Case make_case(const std::string& name) {
  if (name == "chol4") {
    return {rd::cholesky_graph(4), rs::CostModel::cholesky(),
            rs::Platform::hybrid(2, 2)};
  }
  if (name == "chol8") {
    return {rd::cholesky_graph(8), rs::CostModel::cholesky(),
            rs::Platform::hybrid(2, 2)};
  }
  if (name == "lu5") {
    return {rd::lu_graph(5), rs::CostModel::lu(), rs::Platform::cpus(3)};
  }
  if (name == "qr4") {
    return {rd::qr_graph(4), rs::CostModel::qr(), rs::Platform::gpus(2)};
  }
  if (name == "rand1") {
    ru::Rng rng(11);
    return {rd::random_layered_dag({6, 5, 0.4, 4, true}, rng),
            rs::CostModel::cholesky(), rs::Platform::hybrid(2, 2)};
  }
  if (name == "rand2") {
    ru::Rng rng(22);
    return {rd::random_layered_dag({4, 8, 0.7, 4, true}, rng),
            rs::CostModel::lu(), rs::Platform::hybrid(1, 3)};
  }
  throw std::logic_error("unknown golden case " + name);
}

std::unique_ptr<rs::Scheduler> make_scheduler(const std::string& name,
                                              std::uint64_t seed) {
  if (name == "heft") return std::make_unique<rx::HeftScheduler>();
  if (name == "mct") return std::make_unique<rx::MctScheduler>();
  if (name == "random") return std::make_unique<rx::RandomScheduler>(seed);
  if (name == "eft") return std::make_unique<rx::GreedyEftScheduler>();
  throw std::logic_error("unknown scheduler " + name);
}

struct Golden {
  const char* graph;
  const char* scheduler;
  double sigma;
  std::uint64_t seed;
  double makespan;
  std::uint64_t hash;
};

// Recorded from the seed engine (commit 567560f) — do not regenerate
// from the current engine when this fails; a failure means behaviour
// changed.
constexpr Golden kGoldens[] = {
    {"chol4", "heft", 0.0, 1u, 98, 0xae6d54f9caa3427aull},
    {"chol4", "heft", 0.0, 7u, 98, 0xae6d54f9caa3427aull},
    {"chol4", "heft", 0.1, 1u, 97.044265918215899, 0x3df493460184832cull},
    {"chol4", "heft", 0.1, 7u, 101.19464963648163, 0x7af4d6822b93d7d7ull},
    {"chol4", "heft", 0.5, 1u, 104.70182790648465, 0x16e2996ddf7ea70dull},
    {"chol4", "heft", 0.5, 7u, 121.49495917427168, 0xe5c307dd350d75a7ull},
    {"chol4", "mct", 0.0, 1u, 94, 0xed1e1bbc723fbbc3ull},
    {"chol4", "mct", 0.0, 7u, 94, 0xed1e1bbc723fbbc3ull},
    {"chol4", "mct", 0.1, 1u, 103.18666512211141, 0x8202536fb1f01202ull},
    {"chol4", "mct", 0.1, 7u, 105.05752142321543, 0xbf879c0999cc0434ull},
    {"chol4", "mct", 0.5, 1u, 101.10366718648424, 0xa6cfdcac3a150fb5ull},
    {"chol4", "mct", 0.5, 7u, 110.37878460117086, 0x2881397d981b87afull},
    {"chol4", "random", 0.0, 1u, 419, 0x197a36ea91abca05ull},
    {"chol4", "random", 0.0, 7u, 564, 0xa0d11a13ccbf431full},
    {"chol4", "random", 0.1, 1u, 420.63227538558215, 0x78f9c67967bbc393ull},
    {"chol4", "random", 0.1, 7u, 569.32740417629998, 0x7f816e45189d6f9dull},
    {"chol4", "random", 0.5, 1u, 307.47496464069678, 0x2248a11e06952141ull},
    {"chol4", "random", 0.5, 7u, 590.63702088149967, 0x25710fa4bc265f82ull},
    {"chol4", "eft", 0.0, 1u, 296, 0x3517d6ae0db9bb33ull},
    {"chol4", "eft", 0.0, 7u, 296, 0x3517d6ae0db9bb33ull},
    {"chol4", "eft", 0.1, 1u, 307.28829551348849, 0x97ae88095c15aa90ull},
    {"chol4", "eft", 0.1, 7u, 294.97648091790398, 0x4b732af78e3cb540ull},
    {"chol4", "eft", 0.5, 1u, 294.84462898565289, 0xf196f7d2b58134b7ull},
    {"chol4", "eft", 0.5, 7u, 400.98505545808638, 0x75bd0b27c1e2fd94ull},
    {"chol8", "heft", 0.0, 1u, 381, 0x9ec3b6cc57420d78ull},
    {"chol8", "heft", 0.0, 7u, 381, 0x9ec3b6cc57420d78ull},
    {"chol8", "heft", 0.1, 1u, 378.82793782236757, 0x6e0ee4c51b325f7eull},
    {"chol8", "heft", 0.1, 7u, 382.84193720742229, 0xe6218cafe55d4c27ull},
    {"chol8", "heft", 0.5, 1u, 429.83171246811247, 0x15042d6871663c0aull},
    {"chol8", "heft", 0.5, 7u, 403.16797690156233, 0xfcd4f9b47706c9a9ull},
    {"chol8", "mct", 0.0, 1u, 368, 0x6bb69a77846e50bfull},
    {"chol8", "mct", 0.0, 7u, 368, 0x6bb69a77846e50bfull},
    {"chol8", "mct", 0.1, 1u, 377.93901490841267, 0x9078e0970d0004d1ull},
    {"chol8", "mct", 0.1, 7u, 363.50610434136462, 0xe8d3f7033b5cf2dcull},
    {"chol8", "mct", 0.5, 1u, 378.21554664828858, 0xe376582553422a6full},
    {"chol8", "mct", 0.5, 7u, 391.95448660915787, 0x41f5da185ee8a61eull},
    {"chol8", "random", 0.0, 1u, 1074, 0x204ea01abdedf61eull},
    {"chol8", "random", 0.0, 7u, 1049, 0x4fe873b355b11ebbull},
    {"chol8", "random", 0.1, 1u, 1152.5027521683742, 0xaaf9ff00418cbbb5ull},
    {"chol8", "random", 0.1, 7u, 665.92154584996672, 0x239721a992cc84a8ull},
    {"chol8", "random", 0.5, 1u, 1237.1225918539426, 0xd2d9068f9e8a0133ull},
    {"chol8", "random", 0.5, 7u, 1071.7810971478252, 0x3f64235fb1d1fa10ull},
    {"chol8", "eft", 0.0, 1u, 764, 0xf3c47201387e67b2ull},
    {"chol8", "eft", 0.0, 7u, 764, 0xf3c47201387e67b2ull},
    {"chol8", "eft", 0.1, 1u, 716.2138156827757, 0x9b396575e24e1788ull},
    {"chol8", "eft", 0.1, 7u, 629.30943638650319, 0xbb4cbe7a4e40c915ull},
    {"chol8", "eft", 0.5, 1u, 782.97781871256245, 0xf343a83995500945ull},
    {"chol8", "eft", 0.5, 7u, 634.49735529352802, 0xb342f8390f0eff3bull},
    {"lu5", "heft", 0.0, 1u, 2540, 0x16e3141a9f946aecull},
    {"lu5", "heft", 0.0, 7u, 2540, 0x16e3141a9f946aecull},
    {"lu5", "heft", 0.1, 1u, 2632.42105576118, 0x7a878fd344eeef26ull},
    {"lu5", "heft", 0.1, 7u, 2571.3903435904126, 0xac8bf04e1a198b03ull},
    {"lu5", "heft", 0.5, 1u, 2854.6302081370354, 0x02f6110ba63ace94ull},
    {"lu5", "heft", 0.5, 7u, 2842.2401226087313, 0x468693bf66e280aeull},
    {"lu5", "mct", 0.0, 1u, 2590, 0x27edf7d54464578dull},
    {"lu5", "mct", 0.0, 7u, 2590, 0x27edf7d54464578dull},
    {"lu5", "mct", 0.1, 1u, 2633.1580831071815, 0xc15f33219c302296ull},
    {"lu5", "mct", 0.1, 7u, 2600.3301013331147, 0x0828a7115299df0cull},
    {"lu5", "mct", 0.5, 1u, 2655.8499193590746, 0x790bd0c4a7c7b171ull},
    {"lu5", "mct", 0.5, 7u, 2768.0806674953847, 0xa011b66a3273ac01ull},
    {"lu5", "random", 0.0, 1u, 2710, 0x357e6e1bd81d0f8dull},
    {"lu5", "random", 0.0, 7u, 2580, 0x8cb5deec8547ab89ull},
    {"lu5", "random", 0.1, 1u, 2612.368884865627, 0x33ef05e9f4d12a44ull},
    {"lu5", "random", 0.1, 7u, 2679.2560667412145, 0xe3c6b311a099d50bull},
    {"lu5", "random", 0.5, 1u, 2668.9386586101396, 0x7e77a8d905b9dd0bull},
    {"lu5", "random", 0.5, 7u, 2651.7817909989512, 0x5aca6a8f9344df16ull},
    {"lu5", "eft", 0.0, 1u, 2560, 0xeaaabd564e2b27faull},
    {"lu5", "eft", 0.0, 7u, 2560, 0xeaaabd564e2b27faull},
    {"lu5", "eft", 0.1, 1u, 2542.0858617087529, 0x4763a05c3ffb7723ull},
    {"lu5", "eft", 0.1, 7u, 2584.7383305038584, 0x23d997d864bde89bull},
    {"lu5", "eft", 0.5, 1u, 2532.952938968509, 0x41bd177804697b91ull},
    {"lu5", "eft", 0.5, 7u, 2636.3478939261627, 0xb27c4cc8100eeff2ull},
    {"qr4", "heft", 0.0, 1u, 252, 0x8b72cdef10789e0bull},
    {"qr4", "heft", 0.0, 7u, 252, 0x8b72cdef10789e0bull},
    {"qr4", "heft", 0.1, 1u, 253.15858238847974, 0xe65c4962005e2409ull},
    {"qr4", "heft", 0.1, 7u, 255.62740398197604, 0x3c255fad5f6f30cfull},
    {"qr4", "heft", 0.5, 1u, 261.11562840318595, 0x1c98a239d92cbb10ull},
    {"qr4", "heft", 0.5, 7u, 296.41012974583629, 0x0b6705a27130f89eull},
    {"qr4", "mct", 0.0, 1u, 269, 0xceb44b81ecafed64ull},
    {"qr4", "mct", 0.0, 7u, 269, 0xceb44b81ecafed64ull},
    {"qr4", "mct", 0.1, 1u, 266.48812246604615, 0xfad6316038624177ull},
    {"qr4", "mct", 0.1, 7u, 267.3793086751179, 0x5a2ec5c80b74694bull},
    {"qr4", "mct", 0.5, 1u, 269.06348824919871, 0xe7ec8886db345ab6ull},
    {"qr4", "mct", 0.5, 7u, 264.56777128388086, 0x7bad0ab1c50d4423ull},
    {"qr4", "random", 0.0, 1u, 266, 0x06a579fa1d932eaeull},
    {"qr4", "random", 0.0, 7u, 266, 0x48e46bb9e7d5d97full},
    {"qr4", "random", 0.1, 1u, 256.63191635085622, 0xb4e626e9f7d6514dull},
    {"qr4", "random", 0.1, 7u, 260.24713019640546, 0x2e058918912424c0ull},
    {"qr4", "random", 0.5, 1u, 223.54066359390683, 0x16e490833766ffd9ull},
    {"qr4", "random", 0.5, 7u, 257.32768670077695, 0x23f25392acd63330ull},
    {"qr4", "eft", 0.0, 1u, 272, 0x440b3c97804ef83cull},
    {"qr4", "eft", 0.0, 7u, 272, 0x440b3c97804ef83cull},
    {"qr4", "eft", 0.1, 1u, 270.15813720137021, 0xef214b4ea5df427eull},
    {"qr4", "eft", 0.1, 7u, 272.97085733736736, 0x09051effb138a9d5ull},
    {"qr4", "eft", 0.5, 1u, 257.34228373482131, 0xab237b2ab437f35eull},
    {"qr4", "eft", 0.5, 7u, 269.58123379407755, 0xc26a2b26e409a25dull},
    {"rand1", "heft", 0.0, 1u, 118, 0xfc20513abd4056feull},
    {"rand1", "heft", 0.0, 7u, 118, 0xfc20513abd4056feull},
    {"rand1", "heft", 0.1, 1u, 119.79648982763433, 0x84a643674101d3c6ull},
    {"rand1", "heft", 0.1, 7u, 120.10719485864499, 0xdaf2e29d131d9161ull},
    {"rand1", "heft", 0.5, 1u, 136.40895689192934, 0x38068f3fe94a8020ull},
    {"rand1", "heft", 0.5, 7u, 124.89788983477665, 0x484becab7052fb29ull},
    {"rand1", "mct", 0.0, 1u, 124, 0x06f5f06a7c9684c2ull},
    {"rand1", "mct", 0.0, 7u, 124, 0x06f5f06a7c9684c2ull},
    {"rand1", "mct", 0.1, 1u, 122.00116365353909, 0x96d03d43f29872e9ull},
    {"rand1", "mct", 0.1, 7u, 121.27530615697013, 0x0f59ffdbb0dd373eull},
    {"rand1", "mct", 0.5, 1u, 129.58415009911295, 0xb554f2757e678f8cull},
    {"rand1", "mct", 0.5, 7u, 144.73858042172228, 0x4d985ff1f3417565ull},
    {"rand1", "random", 0.0, 1u, 422, 0x371ac1ca0daae52dull},
    {"rand1", "random", 0.0, 7u, 450, 0xbc59c113922695caull},
    {"rand1", "random", 0.1, 1u, 658.10883431375089, 0xe6f61d2d967005baull},
    {"rand1", "random", 0.1, 7u, 502.39140685803432, 0x5e4c40ac8bf4ae39ull},
    {"rand1", "random", 0.5, 1u, 959.53998512076964, 0xb0f7962316a8c519ull},
    {"rand1", "random", 0.5, 7u, 408.9700396168621, 0x47a0f066bb78272aull},
    {"rand1", "eft", 0.0, 1u, 546, 0x1aed56f1a36aaff2ull},
    {"rand1", "eft", 0.0, 7u, 546, 0x1aed56f1a36aaff2ull},
    {"rand1", "eft", 0.1, 1u, 381.32806773259802, 0x20a569221aaa548cull},
    {"rand1", "eft", 0.1, 7u, 560.30557513563042, 0x786ac8bae60cca15ull},
    {"rand1", "eft", 0.5, 1u, 434.85682732623928, 0xcef01ddec1cc8e6eull},
    {"rand1", "eft", 0.5, 7u, 649.28140194726325, 0x5b76e650c08064baull},
    {"rand2", "heft", 0.0, 1u, 168, 0xaa6c732e93b6abfcull},
    {"rand2", "heft", 0.0, 7u, 168, 0xaa6c732e93b6abfcull},
    {"rand2", "heft", 0.1, 1u, 166.7603401648297, 0xc5897f4f2d3dcdc1ull},
    {"rand2", "heft", 0.1, 7u, 168.76454785976387, 0xd6ecc58526b51963ull},
    {"rand2", "heft", 0.5, 1u, 155.05855200243667, 0xeaeeaba5f94a545dull},
    {"rand2", "heft", 0.5, 7u, 218.30110993621054, 0x95fae6e7fd789d46ull},
    {"rand2", "mct", 0.0, 1u, 156, 0x4935f93eea5abafaull},
    {"rand2", "mct", 0.0, 7u, 156, 0x4935f93eea5abafaull},
    {"rand2", "mct", 0.1, 1u, 153.1134938062097, 0xe1c36db3d431bf51ull},
    {"rand2", "mct", 0.1, 7u, 160.59872961878423, 0x952485358fa7989bull},
    {"rand2", "mct", 0.5, 1u, 169.98575299307589, 0x38f4a17c72a4d6ceull},
    {"rand2", "mct", 0.5, 7u, 180.30254965264982, 0x23de4ebf40eb86e8ull},
    {"rand2", "random", 0.0, 1u, 390, 0x4a40aba02e4bfb91ull},
    {"rand2", "random", 0.0, 7u, 370, 0x13e171c935026454ull},
    {"rand2", "random", 0.1, 1u, 344.80318877682282, 0xdbc620e68c67adceull},
    {"rand2", "random", 0.1, 7u, 346.15449173115849, 0x176b01108c0cbac4ull},
    {"rand2", "random", 0.5, 1u, 311.15312523515291, 0x1ccb6f49347f056cull},
    {"rand2", "random", 0.5, 7u, 563.10074196785615, 0xd47b0c013d1de6dcull},
    {"rand2", "eft", 0.0, 1u, 266, 0x24e2c7f0107f87ecull},
    {"rand2", "eft", 0.0, 7u, 266, 0x24e2c7f0107f87ecull},
    {"rand2", "eft", 0.1, 1u, 263.45209199952802, 0x2d4f21faf8356ae9ull},
    {"rand2", "eft", 0.1, 7u, 256.44518838772143, 0x0044b47372621b43ull},
    {"rand2", "eft", 0.5, 1u, 339.59209546677357, 0xa8ca4f9d8236eb3dull},
    {"rand2", "eft", 0.5, 7u, 274.07129932887449, 0x1bf1ba05b56591beull},
};

}  // namespace

TEST(SimEquivalence, MatchesSeedEngineGoldens) {
  std::string last_case;
  std::unique_ptr<Case> c;
  for (const Golden& g : kGoldens) {
    if (g.graph != last_case) {
      c = std::make_unique<Case>(make_case(g.graph));
      last_case = g.graph;
    }
    auto sched = make_scheduler(g.scheduler, g.seed);
    rs::Simulator sim(c->graph, c->platform, c->costs, {g.sigma, g.seed});
    const auto r = sim.run(*sched);
    EXPECT_EQ(r.makespan, g.makespan)
        << g.graph << "/" << g.scheduler << " sigma=" << g.sigma
        << " seed=" << g.seed;
    EXPECT_EQ(trace_hash(r.trace), g.hash)
        << g.graph << "/" << g.scheduler << " sigma=" << g.sigma
        << " seed=" << g.seed;
  }
}

TEST(SimEquivalence, RandomDagSweepProducesValidDeterministicTraces) {
  // Wider property sweep than the goldens: random topologies x all four
  // schedulers x noise levels. Every trace must be a valid schedule, and
  // re-running with the same seed must reproduce it bit-for-bit (the
  // engine has no hidden iteration-order dependence).
  const char* scheds[] = {"heft", "mct", "random", "eft"};
  int dag_seed = 100;
  for (int layers : {3, 7}) {
    for (int width : {2, 9}) {
      ru::Rng g_rng(static_cast<std::uint64_t>(++dag_seed));
      const auto graph =
          rd::random_layered_dag({layers, width, 0.5, 4, true}, g_rng);
      const auto costs = rs::CostModel::cholesky();
      const auto platform = rs::Platform::hybrid(2, 2);
      for (const char* sn : scheds) {
        for (double sigma : {0.0, 0.1, 0.5}) {
          for (std::uint64_t seed : {3ULL, 17ULL}) {
            auto s1 = make_scheduler(sn, seed);
            rs::Simulator sim(graph, platform, costs, {sigma, seed});
            const auto r1 = sim.run(*s1);
            EXPECT_EQ(r1.trace.validate(graph, platform), "")
                << sn << " sigma=" << sigma << " seed=" << seed;
            auto s2 = make_scheduler(sn, seed);
            const auto r2 = sim.run(*s2);
            EXPECT_EQ(r1.makespan, r2.makespan);
            EXPECT_EQ(trace_hash(r1.trace), trace_hash(r2.trace));
          }
        }
      }
    }
  }
}

TEST(SimEquivalence, ReadySetStaysSortedAndMatchesBitmap) {
  const auto graph = rd::cholesky_graph(6);
  const auto costs = rs::CostModel::cholesky();
  const auto platform = rs::Platform::hybrid(2, 2);
  rs::SimEngine engine(graph, platform, costs, 0.3, 5);
  rx::MctScheduler sched;
  sched.reset(engine);
  while (!engine.finished()) {
    const auto& ready = engine.ready();
    for (std::size_t i = 0; i + 1 < ready.size(); ++i) {
      ASSERT_LT(ready[i], ready[i + 1]);  // strictly ascending ids
    }
    for (rd::TaskId t : ready) ASSERT_TRUE(engine.is_ready(t));
    std::size_t ready_count = 0;
    for (rd::TaskId t = 0; t < graph.num_tasks(); ++t) {
      if (engine.is_ready(t)) ++ready_count;
    }
    ASSERT_EQ(ready_count, ready.size());
    for (const auto& a : sched.decide(engine)) {
      engine.start(a.task, a.resource);
    }
    if (!engine.finished() && !engine.advance()) break;
  }
  EXPECT_TRUE(engine.finished());
}

TEST(SimEquivalence, ReadyLogIsAppendOnlyAndCoversEveryTaskOnce) {
  const auto graph = rd::cholesky_graph(6);
  const auto costs = rs::CostModel::cholesky();
  const auto platform = rs::Platform::hybrid(2, 2);
  rs::SimEngine engine(graph, platform, costs, 0.3, 5);
  rx::MctScheduler sched;
  sched.reset(engine);
  std::vector<rd::TaskId> prefix(engine.ready_log());
  while (!engine.finished()) {
    const auto& log = engine.ready_log();
    // Append-only: the previously observed prefix never changes.
    ASSERT_GE(log.size(), prefix.size());
    ASSERT_TRUE(std::equal(prefix.begin(), prefix.end(), log.begin()));
    // Every ready task is already in the log.
    for (rd::TaskId t : engine.ready()) {
      ASSERT_NE(std::find(log.begin(), log.end(), t), log.end());
    }
    prefix.assign(log.begin(), log.end());
    for (const auto& a : sched.decide(engine)) {
      engine.start(a.task, a.resource);
    }
    if (!engine.finished() && !engine.advance()) break;
  }
  // At the end the log is a permutation of all task ids.
  auto log = engine.ready_log();
  EXPECT_EQ(log.size(), graph.num_tasks());
  std::sort(log.begin(), log.end());
  for (rd::TaskId t = 0; t < graph.num_tasks(); ++t) EXPECT_EQ(log[t], t);
}

TEST(SimEquivalence, ExpectedAvailabilityConsistentThroughoutRun) {
  const auto graph = rd::cholesky_graph(5);
  const auto costs = rs::CostModel::cholesky();
  const auto platform = rs::Platform::hybrid(2, 2);
  rs::SimEngine engine(graph, platform, costs, 0.2, 9);
  rx::GreedyEftScheduler sched;
  sched.reset(engine);
  while (!engine.finished()) {
    for (rs::ResourceId r = 0; r < platform.size(); ++r) {
      const double avail = engine.expected_available_at(r);  // must not throw
      ASSERT_GE(avail, engine.now());
      if (engine.is_idle(r)) ASSERT_EQ(avail, engine.now());
    }
    for (const auto& a : sched.decide(engine)) {
      engine.start(a.task, a.resource);
    }
    if (!engine.finished() && !engine.advance()) break;
  }
  EXPECT_TRUE(engine.finished());
}
