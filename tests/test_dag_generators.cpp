#include <gtest/gtest.h>

#include "core/apps.hpp"
#include "dag/cholesky.hpp"
#include "dag/lu.hpp"
#include "dag/qr.hpp"
#include "dag/random_dag.hpp"
#include "dag/task_graph.hpp"

namespace rd = readys::dag;
namespace rc = readys::core;

TEST(TaskGraph, AddTaskAndEdgeBasics) {
  rd::TaskGraph g("g", {"A", "B"});
  auto t0 = g.add_task(0);
  auto t1 = g.add_task(1);
  g.add_edge(t0, t1);
  EXPECT_EQ(g.num_tasks(), 2u);
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_TRUE(g.has_edge(t0, t1));
  EXPECT_FALSE(g.has_edge(t1, t0));
  EXPECT_EQ(g.successors(t0).size(), 1u);
  EXPECT_EQ(g.predecessors(t1).size(), 1u);
}

TEST(TaskGraph, DuplicateEdgeIgnored) {
  rd::TaskGraph g("g", {"A"});
  auto t0 = g.add_task(0);
  auto t1 = g.add_task(0);
  g.add_edge(t0, t1);
  g.add_edge(t0, t1);
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(TaskGraph, RejectsBadEdges) {
  rd::TaskGraph g("g", {"A"});
  auto t0 = g.add_task(0);
  auto t1 = g.add_task(0);
  EXPECT_THROW(g.add_edge(t0, t0), std::invalid_argument);  // self loop
  EXPECT_THROW(g.add_edge(t1, t0), std::invalid_argument);  // backward
  EXPECT_THROW(g.add_edge(t0, 99), std::out_of_range);
  EXPECT_THROW(g.add_task(7), std::invalid_argument);
}

TEST(TaskGraph, TopologicalOrderRespectsEdges) {
  rd::TaskGraph g("g", {"A"});
  for (int i = 0; i < 6; ++i) g.add_task(0);
  g.add_edge(0, 2);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(2, 4);
  g.add_edge(3, 5);
  g.add_edge(4, 5);
  const auto order = g.topological_order();
  std::vector<std::size_t> pos(g.num_tasks());
  for (std::size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
  for (rd::TaskId t = 0; t < g.num_tasks(); ++t) {
    for (rd::TaskId s : g.successors(t)) EXPECT_LT(pos[t], pos[s]);
  }
  EXPECT_EQ(g.depth(), 3u);
  EXPECT_EQ(g.sources().size(), 2u);
  EXPECT_EQ(g.sinks().size(), 1u);
}

// --- paper anchors: Cholesky task counts quoted in §V-F ---

struct CountCase {
  int tiles;
  std::size_t tasks;
};

class CholeskyCounts : public ::testing::TestWithParam<CountCase> {};

TEST_P(CholeskyCounts, MatchesPaperNumbers) {
  const auto [tiles, tasks] = GetParam();
  const auto g = rd::cholesky_graph(tiles);
  EXPECT_EQ(g.num_tasks(), tasks);
  EXPECT_EQ(g.num_tasks(),
            rc::expected_task_count(rc::App::kCholesky, tiles));
}

INSTANTIATE_TEST_SUITE_P(PaperSizes, CholeskyCounts,
                         ::testing::Values(CountCase{4, 20}, CountCase{6, 56},
                                           CountCase{8, 120},
                                           CountCase{10, 220},
                                           CountCase{12, 364}));

class GeneratorStructure
    : public ::testing::TestWithParam<std::tuple<rc::App, int>> {};

TEST_P(GeneratorStructure, WellFormedDag) {
  const auto [app, tiles] = GetParam();
  const auto g = rc::make_graph(app, tiles);
  EXPECT_EQ(g.num_tasks(), rc::expected_task_count(app, tiles));
  EXPECT_EQ(g.num_kernel_types(), 4);
  // Acyclic by construction; topological_order throws otherwise.
  EXPECT_EQ(g.topological_order().size(), g.num_tasks());
  // Factorizations have a single entry task and a single exit task.
  EXPECT_EQ(g.sources().size(), 1u);
  EXPECT_EQ(g.sinks().size(), 1u);
  // The first panel kernel is the source.
  EXPECT_EQ(g.kernel(g.sources().front()), 0);
}

INSTANTIATE_TEST_SUITE_P(
    AppsAndSizes, GeneratorStructure,
    ::testing::Combine(::testing::Values(rc::App::kCholesky, rc::App::kLu,
                                         rc::App::kQr),
                       ::testing::Values(2, 3, 4, 6, 8, 10)));

TEST(Cholesky, KernelCountsClosedForm) {
  for (int t : {2, 4, 6, 8}) {
    const auto g = rd::cholesky_graph(t);
    const auto counts = g.kernel_counts();
    const std::size_t n = static_cast<std::size_t>(t);
    EXPECT_EQ(counts[rd::kPotrf], n);
    EXPECT_EQ(counts[rd::kTrsm], n * (n - 1) / 2);
    EXPECT_EQ(counts[rd::kSyrk], n * (n - 1) / 2);
    EXPECT_EQ(counts[rd::kGemm], n * (n - 1) * (n - 2) / 6);
  }
}

TEST(Lu, KernelCountsClosedForm) {
  for (int t : {2, 4, 6}) {
    const auto g = rd::lu_graph(t);
    const auto counts = g.kernel_counts();
    const std::size_t n = static_cast<std::size_t>(t);
    EXPECT_EQ(counts[rd::kGetrf], n);
    EXPECT_EQ(counts[rd::kTrsmRow], n * (n - 1) / 2);
    EXPECT_EQ(counts[rd::kTrsmCol], n * (n - 1) / 2);
    EXPECT_EQ(counts[rd::kLuGemm], (n - 1) * n * (2 * n - 1) / 6);
  }
}

TEST(Qr, KernelCountsClosedForm) {
  for (int t : {2, 4, 6}) {
    const auto g = rd::qr_graph(t);
    const auto counts = g.kernel_counts();
    const std::size_t n = static_cast<std::size_t>(t);
    EXPECT_EQ(counts[rd::kGeqrt], n);
    EXPECT_EQ(counts[rd::kUnmqr], n * (n - 1) / 2);
    EXPECT_EQ(counts[rd::kTsqrt], n * (n - 1) / 2);
    EXPECT_EQ(counts[rd::kTsmqr], (n - 1) * n * (2 * n - 1) / 6);
  }
}

TEST(Cholesky, T1IsSinglePotrf) {
  const auto g = rd::cholesky_graph(1);
  EXPECT_EQ(g.num_tasks(), 1u);
  EXPECT_EQ(g.kernel(0), rd::kPotrf);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(Cholesky, T2HasKnownShape) {
  // POTRF(0) -> TRSM(1,0) -> SYRK -> POTRF(1), a chain of 4 tasks.
  const auto g = rd::cholesky_graph(2);
  EXPECT_EQ(g.num_tasks(), 4u);
  EXPECT_EQ(g.depth(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
}

TEST(Qr, WiderAndAtLeastAsDeepAsCholesky) {
  // QR's TSQRT chains keep its DAG at least as deep as Cholesky's (equal
  // in edge count for these generators) while carrying ~3x the tasks.
  for (int t : {4, 6, 8}) {
    EXPECT_GE(rd::qr_graph(t).depth(), rd::cholesky_graph(t).depth());
    EXPECT_GT(rd::qr_graph(t).num_tasks(), rd::cholesky_graph(t).num_tasks());
  }
}

TEST(RandomDag, RespectsConfiguration) {
  readys::util::Rng rng(42);
  rd::RandomDagConfig cfg;
  cfg.layers = 5;
  cfg.width = 4;
  cfg.kernel_types = 3;
  const auto g = rd::random_layered_dag(cfg, rng);
  EXPECT_EQ(g.num_tasks(), 20u);
  EXPECT_EQ(g.num_kernel_types(), 3);
  EXPECT_EQ(g.depth(), 4u);  // connect_layers guarantees full depth
  EXPECT_EQ(g.topological_order().size(), 20u);
}

TEST(RandomDag, Deterministic) {
  readys::util::Rng rng1(7);
  readys::util::Rng rng2(7);
  rd::RandomDagConfig cfg;
  const auto a = rd::random_layered_dag(cfg, rng1);
  const auto b = rd::random_layered_dag(cfg, rng2);
  ASSERT_EQ(a.num_tasks(), b.num_tasks());
  EXPECT_EQ(a.num_edges(), b.num_edges());
  for (rd::TaskId t = 0; t < a.num_tasks(); ++t) {
    EXPECT_EQ(a.kernel(t), b.kernel(t));
    EXPECT_EQ(a.successors(t), b.successors(t));
  }
}
