#include <gtest/gtest.h>

#include "dag/cholesky.hpp"
#include "rl/state_encoder.hpp"

namespace rd = readys::dag;
namespace rs = readys::sim;
namespace rr = readys::rl;

namespace {

struct Fixture {
  rd::TaskGraph graph = rd::cholesky_graph(4);
  rs::Platform platform = rs::Platform::hybrid(2, 2);
  rs::CostModel costs = rs::CostModel::cholesky();
};

}  // namespace

TEST(StateEncoder, WidthsAreConsistent) {
  EXPECT_EQ(rr::StateEncoder::node_feature_width(4), 17);
  EXPECT_EQ(rr::StateEncoder::kResourceFeatureWidth, 8);
}

TEST(StateEncoder, InitialObservationHasSourceReady) {
  Fixture f;
  rs::SimEngine engine(f.graph, f.platform, f.costs, 0.0, 1);
  rr::StateEncoder enc(f.graph, f.costs, 1);
  const auto obs = enc.encode(engine, 0);
  ASSERT_EQ(obs.ready_tasks.size(), 1u);
  EXPECT_EQ(obs.ready_tasks.front(), f.graph.sources().front());
  EXPECT_FALSE(obs.allow_idle);  // nothing running yet
  EXPECT_EQ(obs.num_actions(), 1u);
  EXPECT_EQ(obs.features.rows(), obs.window.size());
  EXPECT_EQ(obs.features.cols(), 17u);
  EXPECT_EQ(obs.ahat.rows(), obs.window.size());
  EXPECT_EQ(obs.ahat.cols(), obs.window.size());
}

TEST(StateEncoder, WindowGrowsWithW) {
  Fixture f;
  rs::SimEngine engine(f.graph, f.platform, f.costs, 0.0, 1);
  std::size_t prev = 0;
  for (int w = 0; w <= 3; ++w) {
    rr::StateEncoder enc(f.graph, f.costs, w);
    const auto obs = enc.encode(engine, 0);
    EXPECT_GE(obs.window.size(), prev);
    prev = obs.window.size();
  }
  EXPECT_GT(prev, 1u);
}

TEST(StateEncoder, RunningTaskFlagsSet) {
  Fixture f;
  rs::SimEngine engine(f.graph, f.platform, f.costs, 0.0, 1);
  const auto src = f.graph.sources().front();
  engine.start(src, 3);  // a GPU
  rr::StateEncoder enc(f.graph, f.costs, 2);
  const auto obs = enc.encode(engine, 0);
  EXPECT_TRUE(obs.allow_idle);
  const auto pos = obs.window.position_of(src);
  ASSERT_NE(pos, rd::Window::npos);
  const int base = enc.static_features().static_width();
  EXPECT_DOUBLE_EQ(obs.features.at(pos, base + 0), 0.0);  // not ready
  EXPECT_DOUBLE_EQ(obs.features.at(pos, base + 1), 1.0);  // running
  EXPECT_GT(obs.features.at(pos, base + 2), 0.0);         // remaining
  EXPECT_DOUBLE_EQ(obs.features.at(pos, base + 3), 1.0);  // on GPU
}

TEST(StateEncoder, ResourceSummaryFields) {
  Fixture f;
  rs::SimEngine engine(f.graph, f.platform, f.costs, 0.0, 1);
  rr::StateEncoder enc(f.graph, f.costs, 1);
  {
    const auto obs = enc.encode(engine, 0);  // CPU current
    EXPECT_DOUBLE_EQ(obs.resource_state[0], 0.0);
    EXPECT_DOUBLE_EQ(obs.resource_state[1], 1.0);  // all CPUs idle
    EXPECT_DOUBLE_EQ(obs.resource_state[2], 1.0);  // all GPUs idle
    EXPECT_DOUBLE_EQ(obs.resource_state[5], 0.5);  // CPU share
    EXPECT_DOUBLE_EQ(obs.resource_state[6], 0.5);  // GPU share
  }
  {
    const auto obs = enc.encode(engine, 2);  // GPU current
    EXPECT_DOUBLE_EQ(obs.resource_state[0], 1.0);
  }
  engine.start(f.graph.sources().front(), 0);
  {
    const auto obs = enc.encode(engine, 1);
    EXPECT_DOUBLE_EQ(obs.resource_state[1], 0.5);  // one CPU busy
    // CPU 1 is still idle, so the earliest CPU availability stays 0.
    EXPECT_DOUBLE_EQ(obs.resource_state[3], 0.0);
    EXPECT_DOUBLE_EQ(obs.resource_state[4], 0.0);  // GPUs available now
  }
  {
    // With every CPU busy the earliest CPU availability must be positive.
    rs::SimEngine busy(f.graph, rs::Platform::cpus(1), f.costs, 0.0, 1);
    busy.start(f.graph.sources().front(), 0);
    rr::StateEncoder enc1(f.graph, f.costs, 1);
    const auto obs = enc1.encode(busy, 0, true);
    EXPECT_GT(obs.resource_state[3], 0.0);
  }
}

TEST(StateEncoder, ReadyPositionsAlignWithTasks) {
  Fixture f;
  rs::SimEngine engine(f.graph, f.platform, f.costs, 0.0, 1);
  // Run the source to get several ready tasks (3 TRSMs for T=4).
  engine.start(f.graph.sources().front(), 0);
  engine.advance();
  ASSERT_EQ(engine.ready().size(), 3u);
  rr::StateEncoder enc(f.graph, f.costs, 1);
  const auto obs = enc.encode(engine, 0);
  ASSERT_EQ(obs.ready_tasks.size(), 3u);
  ASSERT_EQ(obs.ready_positions.size(), 3u);
  for (std::size_t i = 0; i < obs.ready_tasks.size(); ++i) {
    EXPECT_EQ(obs.window.nodes[obs.ready_positions[i]], obs.ready_tasks[i]);
  }
}

TEST(StateEncoder, CpuOnlyPlatformHasGpuDefaults) {
  Fixture f;
  const auto p = rs::Platform::cpus(4);
  rs::SimEngine engine(f.graph, p, f.costs, 0.0, 1);
  rr::StateEncoder enc(f.graph, f.costs, 1);
  const auto obs = enc.encode(engine, 0);
  EXPECT_DOUBLE_EQ(obs.resource_state[2], 0.0);  // no GPUs to be idle
  EXPECT_DOUBLE_EQ(obs.resource_state[6], 0.0);  // zero GPU share
  EXPECT_DOUBLE_EQ(obs.resource_state[4], 1.0);  // sentinel availability
}

// --- IncrementalEncoder equivalence ---------------------------------------
//
// The fast-path contract: IncrementalEncoder::encode is bit-identical to
// StateEncoder::encode on the same engine state, across every event type
// the simulator produces — starts, completions, fault kill-and-re-ready,
// and the cluster layer's scoped views (where a stolen task leaves the
// shard's ready list while staying globally ready).

#include "cluster/cluster_sim.hpp"
#include "cluster/shard_sched.hpp"
#include "sched/mct.hpp"
#include "sim/fault_model.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace {

void expect_observations_equal(const rr::Observation& a,
                               const rr::Observation& b) {
  ASSERT_EQ(a.window.nodes, b.window.nodes);
  ASSERT_EQ(a.window.edges, b.window.edges);
  ASSERT_EQ(a.window.depth, b.window.depth);
  ASSERT_EQ(a.features.rows(), b.features.rows());
  ASSERT_EQ(a.features.cols(), b.features.cols());
  for (std::size_t i = 0; i < a.features.size(); ++i) {
    ASSERT_EQ(a.features[i], b.features[i]) << "feature " << i;
  }
  ASSERT_EQ(a.ahat.rows(), b.ahat.rows());
  for (std::size_t i = 0; i < a.ahat.size(); ++i) {
    ASSERT_EQ(a.ahat[i], b.ahat[i]) << "ahat " << i;
  }
  ASSERT_EQ(a.ahat_csr.row_ptr, b.ahat_csr.row_ptr);
  ASSERT_EQ(a.ahat_csr.col, b.ahat_csr.col);
  ASSERT_EQ(a.ahat_csr.val, b.ahat_csr.val);
  ASSERT_EQ(a.ready_positions, b.ready_positions);
  ASSERT_EQ(a.ready_tasks, b.ready_tasks);
  for (std::size_t i = 0; i < a.resource_state.size(); ++i) {
    ASSERT_EQ(a.resource_state[i], b.resource_state[i]);
  }
  ASSERT_EQ(a.current_resource, b.current_resource);
  ASSERT_EQ(a.allow_idle, b.allow_idle);
}

/// Scheduler wrapper comparing full vs incremental encodings at every
/// decision instant, for every idle resource, then delegating to MCT so
/// the run makes progress. Used under both the plain Simulator and the
/// cluster's shard coordinator (scoped views with steals).
class ComparingScheduler final : public rs::Scheduler {
 public:
  explicit ComparingScheduler(int window) : window_(window) {}

  void reset(const rs::EngineView& view) override {
    full_ = std::make_unique<rr::StateEncoder>(view.graph(), view.costs(),
                                               window_);
    inc_ = std::make_unique<rr::IncrementalEncoder>(view.graph(), view.costs(),
                                                    window_);
    inner_.reset(view);
  }

  std::vector<rs::Assignment> decide(const rs::EngineView& view) override {
    if (!view.ready().empty()) {
      for (const rs::ResourceId r : view.idle_resources()) {
        const rr::Observation a = full_->encode(view, r);
        const rr::Observation& b = inc_->encode(view, r);
        expect_observations_equal(a, b);
        ++comparisons_;
      }
    }
    return inner_.decide(view);
  }

  std::string name() const override { return "comparing:mct"; }
  std::size_t comparisons() const noexcept { return comparisons_; }

 private:
  int window_;
  std::unique_ptr<rr::StateEncoder> full_;
  std::unique_ptr<rr::IncrementalEncoder> inc_;
  readys::sched::MctScheduler inner_;
  std::size_t comparisons_ = 0;
};

}  // namespace

TEST(IncrementalEncoder, MatchesFullEncoderThroughACleanRun) {
  Fixture f;
  for (const int w : {1, 2}) {
    ComparingScheduler sched(w);
    rs::Simulator sim(f.graph, f.platform, f.costs, {0.3, 7, {}, {}});
    const auto r = sim.run(sched);
    EXPECT_GT(r.makespan, 0.0);
    EXPECT_GT(sched.comparisons(), f.graph.num_tasks());
  }
}

TEST(IncrementalEncoder, MatchesFullEncoderUnderFaultKillAndReReady) {
  // Outages kill running tasks, which later re-enter the ready set —
  // the event type that moves a task backwards through the lifecycle.
  // Drive the engine directly so we can assert the scenario actually
  // happened (lost executions > 0), not just that the run finished.
  Fixture f;
  rs::FaultModel faults;
  faults.outage_rate = 0.05;  // expected first arrival ~20 ms
  faults.mean_downtime = 10.0;
  rs::SimEngine engine(f.graph, f.platform, f.costs, faults, 0.3, 11);
  ComparingScheduler sched(2);
  sched.reset(engine);
  std::size_t guard = 0;
  while (!engine.finished()) {
    ASSERT_LT(++guard, 100000u) << "fault run failed to converge";
    for (const auto& a : sched.decide(engine)) engine.start(a.task, a.resource);
    if (!engine.finished()) engine.advance();
  }
  EXPECT_GE(engine.num_outages(), 1u);
  EXPECT_GE(engine.num_lost_executions(), 1u)
      << "no task was killed mid-flight; raise outage_rate";
  EXPECT_GT(sched.comparisons(), f.graph.num_tasks());
}

TEST(IncrementalEncoder, MatchesFullEncoderOnScopedViewsWithSteals) {
  // Shard-scoped EngineViews: each inner scheduler sees its shard's
  // ready list, and steals move tasks between shards without the victim
  // shard's seed list changing — the case that forces the incremental
  // encoder to rescan readiness globally.
  const auto graph = rd::cholesky_graph(8);
  const auto costs = rs::CostModel::cholesky();
  const auto platform = rs::Platform::hybrid(8, 8);
  std::vector<ComparingScheduler*> watchers;
  std::vector<std::unique_ptr<rs::Scheduler>> inners;
  for (int s = 0; s < 4; ++s) {
    auto c = std::make_unique<ComparingScheduler>(2);
    watchers.push_back(c.get());
    inners.push_back(std::move(c));
  }
  readys::cluster::ShardScheduler::Options opts;
  opts.shards = 4;
  readys::cluster::ShardScheduler sched(std::move(inners), opts,
                                        "comparing:mct");
  readys::cluster::ClusterSimulator::Options opt;
  opt.sigma = 0.1;
  opt.seed = 5;
  opt.shards = 4;
  readys::cluster::ClusterSimulator sim(graph, platform, costs, opt);
  const auto r = sim.run(sched);
  EXPECT_EQ(r.trace.validate(graph, platform), "");
  EXPECT_GT(sched.steals(), 0u) << "workload was built to force steals";
  std::size_t total = 0;
  for (const ComparingScheduler* c : watchers) total += c->comparisons();
  EXPECT_GT(total, 0u);
}

TEST(IncrementalEncoder, ReusesTopologyAcrossIdleDeclines) {
  // Consecutive offers at one decision instant (different current
  // resource, same seeds) must reuse the cached window and Â outright.
  Fixture f;
  rs::SimEngine engine(f.graph, f.platform, f.costs, 0.0, 1);
  engine.start(f.graph.sources().front(), 0);
  engine.advance();  // 3 TRSMs ready
  engine.start(engine.ready().front(), 1);
  rr::IncrementalEncoder inc(f.graph, f.costs, 2);
  (void)inc.encode(engine, 0);
  const auto rebuilds = inc.window_rebuilds();
  (void)inc.encode(engine, 2);  // same instant, different offer
  (void)inc.encode(engine, 3);
  EXPECT_EQ(inc.window_rebuilds(), rebuilds);
  EXPECT_EQ(inc.window_reuses(), 2u);
}

TEST(IncrementalEncoder, SparseAhatModeSkipsDenseAndKeepsCsr) {
  Fixture f;
  rs::SimEngine engine(f.graph, f.platform, f.costs, 0.0, 1);
  rr::StateEncoder full(f.graph, f.costs, 2);
  rr::IncrementalEncoder inc(f.graph, f.costs, 2);
  inc.set_sparse_ahat(true);
  const auto a = full.encode(engine, 0);
  const auto& b = inc.encode(engine, 0);
  EXPECT_EQ(b.ahat.size(), 0u) << "dense Â must stay empty in sparse mode";
  ASSERT_EQ(a.ahat_csr.row_ptr, b.ahat_csr.row_ptr);
  ASSERT_EQ(a.ahat_csr.col, b.ahat_csr.col);
  ASSERT_EQ(a.ahat_csr.val, b.ahat_csr.val);
  for (std::size_t i = 0; i < a.features.size(); ++i) {
    ASSERT_EQ(a.features[i], b.features[i]);
  }
}
