#include <gtest/gtest.h>

#include "dag/cholesky.hpp"
#include "rl/state_encoder.hpp"

namespace rd = readys::dag;
namespace rs = readys::sim;
namespace rr = readys::rl;

namespace {

struct Fixture {
  rd::TaskGraph graph = rd::cholesky_graph(4);
  rs::Platform platform = rs::Platform::hybrid(2, 2);
  rs::CostModel costs = rs::CostModel::cholesky();
};

}  // namespace

TEST(StateEncoder, WidthsAreConsistent) {
  EXPECT_EQ(rr::StateEncoder::node_feature_width(4), 17);
  EXPECT_EQ(rr::StateEncoder::kResourceFeatureWidth, 8);
}

TEST(StateEncoder, InitialObservationHasSourceReady) {
  Fixture f;
  rs::SimEngine engine(f.graph, f.platform, f.costs, 0.0, 1);
  rr::StateEncoder enc(f.graph, f.costs, 1);
  const auto obs = enc.encode(engine, 0);
  ASSERT_EQ(obs.ready_tasks.size(), 1u);
  EXPECT_EQ(obs.ready_tasks.front(), f.graph.sources().front());
  EXPECT_FALSE(obs.allow_idle);  // nothing running yet
  EXPECT_EQ(obs.num_actions(), 1u);
  EXPECT_EQ(obs.features.rows(), obs.window.size());
  EXPECT_EQ(obs.features.cols(), 17u);
  EXPECT_EQ(obs.ahat.rows(), obs.window.size());
  EXPECT_EQ(obs.ahat.cols(), obs.window.size());
}

TEST(StateEncoder, WindowGrowsWithW) {
  Fixture f;
  rs::SimEngine engine(f.graph, f.platform, f.costs, 0.0, 1);
  std::size_t prev = 0;
  for (int w = 0; w <= 3; ++w) {
    rr::StateEncoder enc(f.graph, f.costs, w);
    const auto obs = enc.encode(engine, 0);
    EXPECT_GE(obs.window.size(), prev);
    prev = obs.window.size();
  }
  EXPECT_GT(prev, 1u);
}

TEST(StateEncoder, RunningTaskFlagsSet) {
  Fixture f;
  rs::SimEngine engine(f.graph, f.platform, f.costs, 0.0, 1);
  const auto src = f.graph.sources().front();
  engine.start(src, 3);  // a GPU
  rr::StateEncoder enc(f.graph, f.costs, 2);
  const auto obs = enc.encode(engine, 0);
  EXPECT_TRUE(obs.allow_idle);
  const auto pos = obs.window.position_of(src);
  ASSERT_NE(pos, rd::Window::npos);
  const int base = enc.static_features().static_width();
  EXPECT_DOUBLE_EQ(obs.features.at(pos, base + 0), 0.0);  // not ready
  EXPECT_DOUBLE_EQ(obs.features.at(pos, base + 1), 1.0);  // running
  EXPECT_GT(obs.features.at(pos, base + 2), 0.0);         // remaining
  EXPECT_DOUBLE_EQ(obs.features.at(pos, base + 3), 1.0);  // on GPU
}

TEST(StateEncoder, ResourceSummaryFields) {
  Fixture f;
  rs::SimEngine engine(f.graph, f.platform, f.costs, 0.0, 1);
  rr::StateEncoder enc(f.graph, f.costs, 1);
  {
    const auto obs = enc.encode(engine, 0);  // CPU current
    EXPECT_DOUBLE_EQ(obs.resource_state[0], 0.0);
    EXPECT_DOUBLE_EQ(obs.resource_state[1], 1.0);  // all CPUs idle
    EXPECT_DOUBLE_EQ(obs.resource_state[2], 1.0);  // all GPUs idle
    EXPECT_DOUBLE_EQ(obs.resource_state[5], 0.5);  // CPU share
    EXPECT_DOUBLE_EQ(obs.resource_state[6], 0.5);  // GPU share
  }
  {
    const auto obs = enc.encode(engine, 2);  // GPU current
    EXPECT_DOUBLE_EQ(obs.resource_state[0], 1.0);
  }
  engine.start(f.graph.sources().front(), 0);
  {
    const auto obs = enc.encode(engine, 1);
    EXPECT_DOUBLE_EQ(obs.resource_state[1], 0.5);  // one CPU busy
    // CPU 1 is still idle, so the earliest CPU availability stays 0.
    EXPECT_DOUBLE_EQ(obs.resource_state[3], 0.0);
    EXPECT_DOUBLE_EQ(obs.resource_state[4], 0.0);  // GPUs available now
  }
  {
    // With every CPU busy the earliest CPU availability must be positive.
    rs::SimEngine busy(f.graph, rs::Platform::cpus(1), f.costs, 0.0, 1);
    busy.start(f.graph.sources().front(), 0);
    rr::StateEncoder enc1(f.graph, f.costs, 1);
    const auto obs = enc1.encode(busy, 0, true);
    EXPECT_GT(obs.resource_state[3], 0.0);
  }
}

TEST(StateEncoder, ReadyPositionsAlignWithTasks) {
  Fixture f;
  rs::SimEngine engine(f.graph, f.platform, f.costs, 0.0, 1);
  // Run the source to get several ready tasks (3 TRSMs for T=4).
  engine.start(f.graph.sources().front(), 0);
  engine.advance();
  ASSERT_EQ(engine.ready().size(), 3u);
  rr::StateEncoder enc(f.graph, f.costs, 1);
  const auto obs = enc.encode(engine, 0);
  ASSERT_EQ(obs.ready_tasks.size(), 3u);
  ASSERT_EQ(obs.ready_positions.size(), 3u);
  for (std::size_t i = 0; i < obs.ready_tasks.size(); ++i) {
    EXPECT_EQ(obs.window.nodes[obs.ready_positions[i]], obs.ready_tasks[i]);
  }
}

TEST(StateEncoder, CpuOnlyPlatformHasGpuDefaults) {
  Fixture f;
  const auto p = rs::Platform::cpus(4);
  rs::SimEngine engine(f.graph, p, f.costs, 0.0, 1);
  rr::StateEncoder enc(f.graph, f.costs, 1);
  const auto obs = enc.encode(engine, 0);
  EXPECT_DOUBLE_EQ(obs.resource_state[2], 0.0);  // no GPUs to be idle
  EXPECT_DOUBLE_EQ(obs.resource_state[6], 0.0);  // zero GPU share
  EXPECT_DOUBLE_EQ(obs.resource_state[4], 1.0);  // sentinel availability
}
