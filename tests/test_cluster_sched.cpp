// Property suite for the decentralized shard scheduler: task
// conservation under steal interleavings, heartbeat state-machine
// validity, bounded staleness of the cross-shard directory, shard-trace
// merge validity, and the registry surface of the "shard:<inner>"
// family. Style follows the mapf-het-inspired invariant tests in
// tests/test_schedulers_property.cpp: run real episodes, then assert
// invariants that must hold under EVERY interleaving rather than pinning
// one specific schedule.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "cluster/cluster_sim.hpp"
#include "cluster/heartbeat.hpp"
#include "cluster/register.hpp"
#include "cluster/shard_sched.hpp"
#include "dag/cholesky.hpp"
#include "dag/random_dag.hpp"
#include "sched/guarded.hpp"
#include "sched/mct.hpp"
#include "sched/scheduler.hpp"
#include "sim/simulator.hpp"

namespace rc = readys::cluster;
namespace rd = readys::dag;
namespace rs = readys::sim;
namespace rx = readys::sched;
namespace ru = readys::util;

namespace {

std::unique_ptr<rc::ShardScheduler> make_shard_mct(
    rc::ShardScheduler::Options opts) {
  std::vector<std::unique_ptr<rs::Scheduler>> inners;
  for (int s = 0; s < opts.shards; ++s) {
    inners.push_back(std::make_unique<rx::MctScheduler>());
  }
  return std::make_unique<rc::ShardScheduler>(std::move(inners), opts, "mct");
}

/// Probe that samples the coordinator's directory clock after every
/// decide, so the bounded-staleness property can be asserted across a
/// whole episode without instrumenting the scheduler itself.
class StaleProbe : public rs::Scheduler {
 public:
  StaleProbe(rc::ShardScheduler& inner) : inner_(&inner) {}
  void reset(const rs::EngineView& view) override { inner_->reset(view); }
  std::vector<rs::Assignment> decide(const rs::EngineView& view) override {
    const auto out = inner_->decide(view);
    const double at = inner_->directory_refreshed_at();
    EXPECT_GE(at, last_at_) << "directory timestamp went backwards";
    EXPECT_LE(at, view.now() + 1e-12) << "directory refreshed in the future";
    EXPECT_LT(view.now() - at, inner_->options().stale_ms + 1e-12)
        << "directory older than the staleness bound after decide";
    last_at_ = at;
    return out;
  }
  std::string name() const override { return inner_->name(); }

 private:
  rc::ShardScheduler* inner_;
  double last_at_ = 0.0;
};

}  // namespace

// Cholesky starts from a single POTRF, so every second-wave task is
// owned by the producer's shard — the other shards MUST steal to get
// work. Conservation: every task still executes exactly once and the
// trace stays a valid schedule, no matter how ownership migrated.
TEST(ClusterSched, TaskConservationUnderStealInterleavings) {
  const auto graph = rd::cholesky_graph(8);
  const auto costs = rs::CostModel::cholesky();
  const auto platform = rs::Platform::hybrid(8, 8);
  for (const std::uint64_t seed : {1ull, 5ull, 9ull}) {
    rc::ShardScheduler::Options opts;
    opts.shards = 4;
    opts.stale_ms = 5.0;
    auto sched = make_shard_mct(opts);
    rc::ClusterSimulator::Options opt;
    opt.sigma = 0.1;
    opt.seed = seed;
    opt.shards = 4;
    rc::ClusterSimulator sim(graph, platform, costs, opt);
    const auto r = sim.run(*sched);
    EXPECT_EQ(r.trace.validate(graph, platform), "");
    EXPECT_EQ(r.trace.size(), graph.num_tasks());
    EXPECT_GT(sched->steals(), 0u) << "workload was built to force steals";
    EXPECT_GE(sched->stolen_tasks(), sched->steals());
    // Conservation while stealing: nothing duplicated, nothing lost —
    // every shard queue drained by the end.
    for (int s = 0; s < sched->num_shards(); ++s) {
      EXPECT_TRUE(sched->shard_queue(s).empty());
    }
  }
}

// A guarded inner must not count a stolen-away task as a strike: the
// scoped view answers is_ready globally, so a late proposal for stolen
// work passes the guard and gets dropped by the coordinator's ownership
// check instead. Were it otherwise, three steals from one shard would
// permanently degrade its guarded:readys agent to MCT.
TEST(ClusterSched, GuardedInnersSurviveStealInterleavings) {
  const auto graph = rd::cholesky_graph(8);
  const auto costs = rs::CostModel::cholesky();
  const auto platform = rs::Platform::hybrid(8, 8);
  std::vector<rx::GuardedScheduler*> guards;
  std::vector<std::unique_ptr<rs::Scheduler>> inners;
  for (int s = 0; s < 4; ++s) {
    auto g = std::make_unique<rx::GuardedScheduler>(
        std::make_unique<rx::MctScheduler>());
    guards.push_back(g.get());
    inners.push_back(std::move(g));
  }
  rc::ShardScheduler::Options opts;
  opts.shards = 4;
  rc::ShardScheduler sched(std::move(inners), opts, "guarded:mct");
  rc::ClusterSimulator::Options opt;
  opt.sigma = 0.1;
  opt.seed = 5;
  opt.shards = 4;
  rc::ClusterSimulator sim(graph, platform, costs, opt);
  const auto r = sim.run(sched);
  EXPECT_EQ(r.trace.validate(graph, platform), "");
  EXPECT_GT(sched.steals(), 0u) << "workload was built to force steals";
  for (const rx::GuardedScheduler* g : guards) {
    EXPECT_FALSE(g->degraded());
    EXPECT_EQ(g->fallback_decisions(), 0u);
  }
}

TEST(ClusterSched, StealingDisabledStillCompletesViaRescue) {
  const auto graph = rd::cholesky_graph(6);
  const auto costs = rs::CostModel::cholesky();
  const auto platform = rs::Platform::hybrid(4, 4);
  rc::ShardScheduler::Options opts;
  opts.shards = 4;
  opts.steal = false;
  auto sched = make_shard_mct(opts);
  rc::ClusterSimulator::Options opt;
  opt.seed = 3;
  opt.shards = 4;
  rc::ClusterSimulator sim(graph, platform, costs, opt);
  const auto r = sim.run(*sched);
  EXPECT_EQ(r.trace.validate(graph, platform), "");
  EXPECT_EQ(sched->steals(), 0u);
}

// The failure detector only worsens one step per observation and only
// revives on a heard heartbeat: alive->dead and dead->suspect must
// never appear in the transition matrix, dead->alive requires the
// resource to actually be up (a recovery), and under an outage/recovery
// fault model transitions do happen.
TEST(ClusterSched, HeartbeatTransitionValidityUnderFaults) {
  const auto graph = rd::cholesky_graph(10);
  const auto costs = rs::CostModel::cholesky();
  const auto platform = rs::Platform::hybrid(6, 6);
  rs::FaultModel faults;
  faults.outage_rate = 0.004;
  faults.mean_downtime = 120.0;
  rc::ShardScheduler::Options opts;
  opts.shards = 3;
  opts.hb_period_ms = 1.0;
  opts.hb_suspect = 2;
  opts.hb_dead = 4;
  auto sched = make_shard_mct(opts);
  rc::ClusterSimulator::Options opt;
  opt.sigma = 0.1;
  opt.seed = 17;
  opt.shards = 3;
  opt.faults = faults;
  rc::ClusterSimulator sim(graph, platform, costs, opt);
  const auto r = sim.run(*sched);
  EXPECT_EQ(r.trace.size(), graph.num_tasks());
  const auto& m = sched->heartbeat().transition_counts();
  const auto alive = static_cast<int>(rc::HbState::kAlive);
  const auto suspect = static_cast<int>(rc::HbState::kSuspect);
  const auto dead = static_cast<int>(rc::HbState::kDead);
  EXPECT_EQ(m[alive][dead], 0u) << "alive may never jump straight to dead";
  EXPECT_EQ(m[dead][suspect], 0u) << "dead only revives on a heartbeat";
  for (int i = 0; i < rc::kNumHbStates; ++i) {
    EXPECT_EQ(m[i][i], 0u) << "self-transitions are not transitions";
  }
  EXPECT_GT(sched->heartbeat().total_transitions(), 0u)
      << "outages lasting >> dead_after beats must be detected";
  EXPECT_GT(m[alive][suspect], 0u);
}

// Unit-level detector check with a hand-driven liveness sequence: a
// silenced resource degrades alive -> suspect -> dead over observations
// and snaps back to alive only once heartbeats resume.
TEST(ClusterSched, HeartbeatMonitorDetectsOutageAndRecovery) {
  rc::HeartbeatMonitor::Config cfg;
  cfg.period_ms = 1.0;
  cfg.suspect_after = 2;
  cfg.dead_after = 4;
  rc::HeartbeatMonitor mon(cfg);
  mon.reset(2, 0.0);
  std::vector<std::uint8_t> up = {1, 1};
  mon.observe(1.5, up);
  EXPECT_EQ(mon.state(0), rc::HbState::kAlive);
  up[0] = 0;  // resource 0 goes silent
  bool saw_suspect = false;
  for (double t = 2.0; t <= 10.0; t += 0.5) {
    mon.observe(t, up);
    if (mon.state(0) == rc::HbState::kSuspect) saw_suspect = true;
    // Resource 1 keeps heartbeating and never degrades.
    EXPECT_EQ(mon.state(1), rc::HbState::kAlive);
  }
  EXPECT_TRUE(saw_suspect) << "must pass through suspect on the way down";
  EXPECT_EQ(mon.state(0), rc::HbState::kDead);
  EXPECT_FALSE(mon.believed_alive(0));
  up[0] = 1;  // recovery: heartbeats resume
  mon.observe(12.0, up);
  EXPECT_EQ(mon.state(0), rc::HbState::kAlive);
  const auto& m = mon.transition_counts();
  EXPECT_EQ(m[static_cast<int>(rc::HbState::kDead)]
             [static_cast<int>(rc::HbState::kAlive)],
            1u);
  EXPECT_EQ(m[static_cast<int>(rc::HbState::kAlive)]
             [static_cast<int>(rc::HbState::kDead)],
            0u);
}

TEST(ClusterSched, DirectoryStalenessIsBoundedAndMonotone) {
  const auto graph = rd::cholesky_graph(8);
  const auto costs = rs::CostModel::cholesky();
  const auto platform = rs::Platform::hybrid(4, 4);
  for (const double stale : {0.5, 5.0, 50.0}) {
    rc::ShardScheduler::Options opts;
    opts.shards = 4;
    opts.stale_ms = stale;
    auto sched = make_shard_mct(opts);
    StaleProbe probe(*sched);
    rc::ClusterSimulator::Options opt;
    opt.sigma = 0.1;
    opt.seed = 2;
    opt.shards = 4;
    rc::ClusterSimulator sim(graph, platform, costs, opt);
    const auto r = sim.run(probe);
    EXPECT_EQ(r.trace.validate(graph, platform), "");
  }
}

// The per-shard sub-traces of a sharded run merge back into a valid
// global schedule: same multiset of entries as the global trace, and
// the merge itself passes Trace::validate.
TEST(ClusterSched, ShardTracesMergeIntoValidGlobalTrace) {
  ru::Rng rng(33);
  const auto graph = rd::random_layered_dag({8, 12, 0.3, 4, true}, rng);
  const auto costs = rs::CostModel::cholesky();
  const auto platform = rs::Platform::hybrid(8, 8);
  rc::ShardScheduler::Options opts;
  opts.shards = 4;
  auto sched = make_shard_mct(opts);
  rc::ClusterSimulator::Options opt;
  opt.sigma = 0.1;
  opt.seed = 13;
  opt.shards = 4;
  rc::ClusterSimulator sim(graph, platform, costs, opt);
  const auto r = sim.run(*sched);
  rs::Trace merged;
  for (const auto& st : r.shard_traces) {
    for (const auto& e : st.entries()) merged.add(e);
  }
  EXPECT_EQ(merged.size(), r.trace.size());
  EXPECT_EQ(merged.validate(graph, platform), "");
  EXPECT_DOUBLE_EQ(merged.makespan(), r.makespan);
}

// The coordinator also runs under the plain (non-sharded) Simulator:
// engine-backed views go through the exact same scoping machinery.
TEST(ClusterSched, RunsUnderPlainSimulator) {
  const auto graph = rd::cholesky_graph(8);
  const auto costs = rs::CostModel::cholesky();
  const auto platform = rs::Platform::hybrid(4, 4);
  rc::ShardScheduler::Options opts;
  opts.shards = 4;
  auto sched = make_shard_mct(opts);
  rs::Simulator sim(graph, platform, costs, {0.1, 9});
  const auto r = sim.run(*sched);
  EXPECT_EQ(r.trace.validate(graph, platform), "");
}

// Parallel per-shard decide must be observationally identical to the
// serial path (disjoint scopes, results applied in shard order).
TEST(ClusterSched, ParallelDecideMatchesSerial) {
  const auto graph = rd::cholesky_graph(8);
  const auto costs = rs::CostModel::cholesky();
  const auto platform = rs::Platform::hybrid(8, 8);
  rc::ShardScheduler::Options serial_opts;
  serial_opts.shards = 4;
  auto serial = make_shard_mct(serial_opts);
  rc::ShardScheduler::Options par_opts;
  par_opts.shards = 4;
  par_opts.parallel = 4;
  auto parallel = make_shard_mct(par_opts);
  for (const std::uint64_t seed : {1ull, 7ull}) {
    rc::ClusterSimulator::Options opt;
    opt.sigma = 0.1;
    opt.seed = seed;
    opt.shards = 4;
    rc::ClusterSimulator sim_a(graph, platform, costs, opt);
    rc::ClusterSimulator sim_b(graph, platform, costs, opt);
    const auto ra = sim_a.run(*serial);
    const auto rb = sim_b.run(*parallel);
    ASSERT_DOUBLE_EQ(ra.makespan, rb.makespan) << "seed=" << seed;
    ASSERT_EQ(ra.trace.size(), rb.trace.size());
    for (std::size_t i = 0; i < ra.trace.entries().size(); ++i) {
      EXPECT_EQ(ra.trace.entries()[i].task, rb.trace.entries()[i].task);
      EXPECT_EQ(ra.trace.entries()[i].resource,
                rb.trace.entries()[i].resource);
    }
  }
}

TEST(ClusterSched, RegistrySurface) {
  rc::register_cluster_scheduler();
  auto& reg = rx::registry();
  EXPECT_TRUE(reg.contains("shard:mct"));
  EXPECT_TRUE(reg.contains("shard(shards=2,steal=0):mct"));
  EXPECT_TRUE(reg.contains("shard(shards=4):guarded:mct"));
  EXPECT_FALSE(reg.contains("shard(bogus=1):mct"));
  EXPECT_FALSE(reg.contains("shard(shards=0):mct"));
  EXPECT_FALSE(reg.contains("shard(dead=1,suspect=3):mct"));
  EXPECT_FALSE(reg.contains("shard(shards=2):nope"));
  EXPECT_FALSE(reg.contains("shardfoo"));
  const auto s = reg.make("shard(shards=2,stale_ms=1.5,parallel=0):mct");
  EXPECT_EQ(s->name(), "shard(2xmct)");
  // The composed family actually runs.
  const auto graph = rd::cholesky_graph(6);
  const auto costs = rs::CostModel::cholesky();
  const auto platform = rs::Platform::hybrid(2, 2);
  auto composed = reg.make("shard(shards=2):guarded:mct");
  rc::ClusterSimulator::Options opt;
  opt.seed = 1;
  opt.shards = 2;
  rc::ClusterSimulator sim(graph, platform, costs, opt);
  const auto r = sim.run(*composed);
  EXPECT_EQ(r.trace.validate(graph, platform), "");
}

TEST(ClusterSched, ShardCountClampsToPlatform) {
  const auto graph = rd::cholesky_graph(4);
  const auto costs = rs::CostModel::cholesky();
  const auto platform = rs::Platform::hybrid(1, 1);  // P = 2
  rc::ShardScheduler::Options opts;
  opts.shards = 8;  // more shards than resources
  auto sched = make_shard_mct(opts);
  rs::Simulator sim(graph, platform, costs, {0.0, 1});
  const auto r = sim.run(*sched);
  EXPECT_EQ(r.trace.validate(graph, platform), "");
  EXPECT_EQ(sched->num_shards(), 2);
}
