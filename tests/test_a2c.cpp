#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>

#include "dag/cholesky.hpp"
#include "rl/a2c.hpp"
#include "util/stats.hpp"

namespace rd = readys::dag;
namespace rs = readys::sim;
namespace rr = readys::rl;

namespace {

rr::AgentConfig tiny_config() {
  rr::AgentConfig cfg;
  cfg.hidden = 16;
  cfg.gcn_layers = 1;
  cfg.window = 1;
  cfg.unroll = 16;
  cfg.lr = 3e-3;
  cfg.seed = 5;
  return cfg;
}

}  // namespace

TEST(A2C, SelectActionGreedyPicksArgmax) {
  rr::AgentConfig cfg = tiny_config();
  const auto graph = rd::cholesky_graph(2);
  rr::PolicyNet net(rr::StateEncoder::node_feature_width(4), 8, cfg);
  rr::A2CTrainer trainer(net, cfg);
  rr::PolicyNet::Output out;
  out.probs = readys::tensor::Var(
      readys::tensor::Tensor::from_rows({{0.1, 0.7, 0.2}}));
  readys::util::Rng rng(1);
  EXPECT_EQ(trainer.select_action(out, true, rng), 1u);
}

TEST(A2C, SelectActionSamplingMatchesDistribution) {
  rr::AgentConfig cfg = tiny_config();
  rr::PolicyNet net(rr::StateEncoder::node_feature_width(4), 8, cfg);
  rr::A2CTrainer trainer(net, cfg);
  rr::PolicyNet::Output out;
  out.probs = readys::tensor::Var(
      readys::tensor::Tensor::from_rows({{0.25, 0.75}}));
  readys::util::Rng rng(2);
  int count1 = 0;
  const int n = 4000;
  for (int i = 0; i < n; ++i) {
    if (trainer.select_action(out, false, rng) == 1u) ++count1;
  }
  EXPECT_NEAR(static_cast<double>(count1) / n, 0.75, 0.03);
}

TEST(A2C, TrainingRunsAndReportsEveryEpisode) {
  const auto graph = rd::cholesky_graph(3);
  const auto platform = rs::Platform::hybrid(1, 1);
  const auto costs = rs::CostModel::cholesky();
  auto cfg = tiny_config();
  rr::PolicyNet net(rr::StateEncoder::node_feature_width(4), 8, cfg);
  rr::A2CTrainer trainer(net, cfg);
  rr::SchedulingEnv env(graph, platform, costs, {0.0, cfg.window, 1});
  const auto report = trainer.train(env, {.episodes = 8, .sigma = 0.0});
  EXPECT_EQ(report.episode_rewards.size(), 8u);
  EXPECT_EQ(report.episode_makespans.size(), 8u);
  EXPECT_GT(report.updates, 0u);
  EXPECT_GT(report.best_makespan, 0.0);
  for (double mk : report.episode_makespans) {
    EXPECT_GE(mk, report.best_makespan);
  }
}

TEST(A2C, TrainingChangesParameters) {
  const auto graph = rd::cholesky_graph(3);
  const auto platform = rs::Platform::hybrid(1, 1);
  const auto costs = rs::CostModel::cholesky();
  auto cfg = tiny_config();
  rr::PolicyNet net(rr::StateEncoder::node_feature_width(4), 8, cfg);
  std::vector<readys::tensor::Tensor> before;
  for (const auto& p : net.parameters()) before.push_back(p.value());
  rr::A2CTrainer trainer(net, cfg);
  rr::SchedulingEnv env(graph, platform, costs, {0.0, cfg.window, 1});
  trainer.train(env, {.episodes = 4});
  bool changed = false;
  const auto params = net.parameters();
  for (std::size_t i = 0; i < params.size(); ++i) {
    if (!(params[i].value() == before[i])) changed = true;
  }
  EXPECT_TRUE(changed);
}

TEST(A2C, EvaluateIsGreedyDeterministic) {
  const auto graph = rd::cholesky_graph(3);
  const auto platform = rs::Platform::hybrid(1, 1);
  const auto costs = rs::CostModel::cholesky();
  auto cfg = tiny_config();
  rr::PolicyNet net(rr::StateEncoder::node_feature_width(4), 8, cfg);
  rr::A2CTrainer trainer(net, cfg);
  rr::SchedulingEnv env(graph, platform, costs, {0.0, cfg.window, 1});
  const auto a = trainer.evaluate(env, 3, 42, /*greedy=*/true);
  const auto b = trainer.evaluate(env, 3, 42, /*greedy=*/true);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), 3u);
}

TEST(A2C, SampledEvaluateIsIndependentOfTrainingHistory) {
  // Regression: evaluate() used to draw from the shared training
  // sample_rng_, so a sampled evaluation's result depended on how many
  // actions training had consumed beforehand. A zero-lr training burst
  // advances the training RNG without moving the weights; the two
  // sampled evaluations around it must still agree exactly.
  const auto graph = rd::cholesky_graph(3);
  const auto platform = rs::Platform::hybrid(1, 1);
  const auto costs = rs::CostModel::cholesky();
  auto cfg = tiny_config();
  cfg.lr = 0.0;
  rr::PolicyNet net(rr::StateEncoder::node_feature_width(4), 8, cfg);
  rr::A2CTrainer trainer(net, cfg);
  rr::SchedulingEnv env(graph, platform, costs, {0.1, cfg.window, 1});
  const auto before = trainer.evaluate(env, 4, 77, /*greedy=*/false);
  trainer.train(env, {.episodes = 5});
  const auto after = trainer.evaluate(env, 4, 77, /*greedy=*/false);
  EXPECT_EQ(before, after);
}

TEST(A2C, RewardSquashIsMonotoneAndBounded) {
  auto cfg = tiny_config();
  cfg.squash_reward = true;
  cfg.reward_clip = 1.0;
  rr::PolicyNet net(rr::StateEncoder::node_feature_width(4), 8, cfg);
  rr::A2CTrainer trainer(net, cfg);
  double prev = -2.0;
  for (double r : {-20.0, -5.0, -1.0, -0.5, 0.0, 0.3, 0.45}) {
    const double shaped = trainer.shape_reward(r);
    EXPECT_GT(shaped, prev);   // strictly monotone below the clip
    EXPECT_GE(shaped, -1.0);   // bounded below
    EXPECT_LE(shaped, 1.0);    // clipped above
    prev = shaped;
  }
  // Large positive rewards saturate at the clip.
  EXPECT_DOUBLE_EQ(trainer.shape_reward(0.9), 1.0);
  // Identity at r = 0 (policy exactly matches HEFT).
  EXPECT_DOUBLE_EQ(trainer.shape_reward(0.0), 0.0);
  // r = -1 (mk = 2 x HEFT) -> mk_H/mk - 1 = -0.5.
  EXPECT_DOUBLE_EQ(trainer.shape_reward(-1.0), -0.5);
}

TEST(A2C, ShapeRewardRejectsNonFiniteReward) {
  // A NaN reward (e.g. a makespan ratio with a zero denominator) must
  // fail loudly before it poisons the returns of a whole episode.
  auto cfg = tiny_config();
  rr::PolicyNet net(rr::StateEncoder::node_feature_width(4), 8, cfg);
  rr::A2CTrainer trainer(net, cfg);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_THROW(trainer.shape_reward(nan), std::domain_error);
  EXPECT_THROW(trainer.shape_reward(inf), std::domain_error);
  EXPECT_THROW(trainer.shape_reward(-inf), std::domain_error);
}

TEST(A2C, RewardShapingCanBeDisabled) {
  auto cfg = tiny_config();
  cfg.squash_reward = false;
  cfg.reward_clip = 0.0;
  rr::PolicyNet net(rr::StateEncoder::node_feature_width(4), 8, cfg);
  rr::A2CTrainer trainer(net, cfg);
  EXPECT_DOUBLE_EQ(trainer.shape_reward(-7.5), -7.5);  // paper's raw reward
}

TEST(A2C, LearnsTinyInstanceToHeftLevel) {
  // On Cholesky T=2 (a 4-task chain) the optimal policy is easy: after a
  // modest number of episodes the agent should at least match HEFT on the
  // deterministic instance. This is the core learning smoke test.
  const auto graph = rd::cholesky_graph(2);
  const auto platform = rs::Platform::hybrid(1, 1);
  const auto costs = rs::CostModel::cholesky();
  auto cfg = tiny_config();
  cfg.entropy_beta = 1e-3;
  rr::PolicyNet net(rr::StateEncoder::node_feature_width(4), 8, cfg);
  rr::A2CTrainer trainer(net, cfg);
  rr::SchedulingEnv env(graph, platform, costs, {0.0, cfg.window, 1});
  trainer.train(env, {.episodes = 250});
  const auto makespans = trainer.evaluate(env, 5, 1000, true);
  const double mean = readys::util::mean(makespans);
  EXPECT_LE(mean, env.heft_reference() * 1.05);
}
