#include <gtest/gtest.h>

#include "core/apps.hpp"
#include "dag/cholesky.hpp"
#include "sched/heft.hpp"
#include "sim/simulator.hpp"

namespace rc = readys::core;
namespace rd = readys::dag;
namespace rs = readys::sim;
namespace rx = readys::sched;

TEST(Heft, SingleTaskGoesToFastestResource) {
  rd::TaskGraph g("one", {"A"});
  g.add_task(0);
  const auto p = rs::Platform::hybrid(1, 1);
  const auto c = rs::CostModel::uniform(1, 10.0, 2.0);
  const auto s = rx::compute_heft(g, p, c);
  EXPECT_EQ(s.assignment[0], 1);  // GPU
  EXPECT_DOUBLE_EQ(s.expected_makespan, 2.0);
}

TEST(Heft, ChainOnHomogeneousPlatform) {
  rd::TaskGraph g("chain", {"A"});
  for (int i = 0; i < 3; ++i) g.add_task(0);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  const auto p = rs::Platform::cpus(2);
  const auto c = rs::CostModel::uniform(1, 10.0, 10.0);
  const auto s = rx::compute_heft(g, p, c);
  EXPECT_DOUBLE_EQ(s.expected_makespan, 30.0);  // no parallelism to exploit
  // Ranks decrease along the chain.
  EXPECT_GT(s.upward_rank[0], s.upward_rank[1]);
  EXPECT_GT(s.upward_rank[1], s.upward_rank[2]);
}

TEST(Heft, ParallelTasksSpreadAcrossResources) {
  rd::TaskGraph g("fork", {"A"});
  for (int i = 0; i < 4; ++i) g.add_task(0);
  const auto p = rs::Platform::cpus(2);
  const auto c = rs::CostModel::uniform(1, 10.0, 10.0);
  const auto s = rx::compute_heft(g, p, c);
  EXPECT_DOUBLE_EQ(s.expected_makespan, 20.0);
}

TEST(Heft, InsertionFillsGaps) {
  // Task layout that leaves a gap on the fast resource: a later short
  // independent task should slot into it.
  rd::TaskGraph g("gap", {"LONG", "SHORT"});
  const auto a = g.add_task(0);  // long head of a chain
  const auto b = g.add_task(0);  // long dependent
  g.add_edge(a, b);
  g.add_task(1);  // independent short task
  const auto p = rs::Platform::cpus(1);
  rs::CostModel c("gap", {{10.0, 10.0}, {3.0, 3.0}});
  const auto s = rx::compute_heft(g, p, c);
  // Everything on one CPU: chain 0..10, 10..20; the short task must fit
  // after (no gap exists on a single busy machine) -> makespan 23.
  EXPECT_DOUBLE_EQ(s.expected_makespan, 23.0);
}

TEST(Heft, ReplayMatchesExpectedMakespanWhenDeterministic) {
  for (auto app : {rc::App::kCholesky, rc::App::kLu, rc::App::kQr}) {
    const auto g = rc::make_graph(app, 6);
    const auto c = rc::make_costs(app);
    for (const auto& p :
         {rs::Platform::cpus(4), rs::Platform::hybrid(2, 2),
          rs::Platform::gpus(4)}) {
      const auto expected = rx::heft_expected_makespan(g, p, c);
      rx::HeftScheduler sched;
      rs::Simulator sim(g, p, c, {0.0, 1});
      const auto result = sim.run(sched);
      EXPECT_NEAR(result.makespan, expected, 1e-6)
          << rc::app_name(app) << " on " << p.name();
      EXPECT_EQ(result.trace.validate(g, p), "");
    }
  }
}

TEST(Heft, GpuGetsTheUpdatesOnHybridPlatform) {
  // With a 28x GEMM speedup, HEFT must place the bulk of GEMMs on GPUs.
  const auto g = rd::cholesky_graph(8);
  const auto p = rs::Platform::hybrid(2, 2);
  const auto c = rs::CostModel::cholesky();
  const auto s = rx::compute_heft(g, p, c);
  std::size_t gemm_on_gpu = 0;
  std::size_t gemm_total = 0;
  for (rd::TaskId t = 0; t < g.num_tasks(); ++t) {
    if (g.kernel(t) != rd::kGemm) continue;
    ++gemm_total;
    if (p.type(s.assignment[t]) == rs::ResourceType::kGpu) ++gemm_on_gpu;
  }
  EXPECT_GT(gemm_total, 0u);
  EXPECT_GT(static_cast<double>(gemm_on_gpu),
            0.8 * static_cast<double>(gemm_total));
}

TEST(Heft, DeterministicAcrossCalls) {
  const auto g = rd::cholesky_graph(6);
  const auto p = rs::Platform::hybrid(2, 2);
  const auto c = rs::CostModel::cholesky();
  const auto s1 = rx::compute_heft(g, p, c);
  const auto s2 = rx::compute_heft(g, p, c);
  EXPECT_EQ(s1.assignment, s2.assignment);
  EXPECT_DOUBLE_EQ(s1.expected_makespan, s2.expected_makespan);
}

TEST(Heft, StaticReplayValidUnderNoise) {
  const auto g = rd::cholesky_graph(6);
  const auto p = rs::Platform::hybrid(2, 2);
  const auto c = rs::CostModel::cholesky();
  for (std::uint64_t seed : {1, 2, 3}) {
    rx::HeftScheduler sched;
    rs::Simulator sim(g, p, c, {0.5, seed});
    const auto result = sim.run(sched);
    EXPECT_EQ(result.trace.validate(g, p), "");
    EXPECT_GT(result.makespan, 0.0);
  }
}
