// Telemetry subsystem (src/obs): registry semantics, multi-threaded
// instrument hammering (the interesting part under tsan), span
// collection, JSONL sink, run manifests, and the merged Chrome trace —
// including the byte-stability contract between sim::to_chrome_trace and
// the chrome_trace_events fragment it now wraps.

#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "dag/cholesky.hpp"
#include "obs/obs.hpp"
#include "sched/mct.hpp"
#include "sim/simulator.hpp"
#include "sim/trace_export.hpp"

namespace ro = readys::obs;
namespace fs = std::filesystem;

namespace {

std::string scratch_file(const std::string& name) {
  const fs::path p = fs::temp_directory_path() / name;
  fs::remove(p);
  return p.string();
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

/// Minimal recursive-descent JSON validator: enough to assert that the
/// files the subsystem emits are well-formed without a JSON dependency.
class JsonValidator {
 public:
  explicit JsonValidator(const std::string& text) : s_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    for (;;) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    for (;;) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }
  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool literal(const char* lit) {
    const std::size_t n = std::string(lit).size();
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }
  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\n' || s_[pos_] == '\t' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

/// Every obs test that installs telemetry must tear it down, or the
/// global pointer leaks into the next test of the same binary run.
struct TelemetryGuard {
  ~TelemetryGuard() { ro::shutdown(); }
};

}  // namespace

// ---------------------------------------------------------------------
// Counters / gauges / histograms
// ---------------------------------------------------------------------

TEST(Counter, AddAndTotal) {
  ro::Counter c;
  EXPECT_EQ(c.total(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.total(), 42u);
}

TEST(Counter, SumsAcrossThreads) {
  ro::Counter c;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.add();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.total(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(Gauge, LastWriteWins) {
  ro::Gauge g;
  EXPECT_EQ(g.get(), 0.0);
  g.set(3.5);
  g.set(-1.25);
  EXPECT_EQ(g.get(), -1.25);
}

TEST(Histogram, InclusiveUpperEdgesAndOverflow) {
  ro::Histogram h({1.0, 10.0, 100.0});
  h.observe(0.5);    // bucket 0
  h.observe(1.0);    // bucket 0 (edges are inclusive)
  h.observe(1.5);    // bucket 1
  h.observe(10.0);   // bucket 1
  h.observe(99.9);   // bucket 2
  h.observe(1000.0); // overflow
  const auto counts = h.counts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 2u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 1u);
  EXPECT_EQ(h.count(), 6u);
  EXPECT_NEAR(h.sum(), 0.5 + 1.0 + 1.5 + 10.0 + 99.9 + 1000.0, 1e-9);
}

// The tsan workhorse: concurrent observers on every stripe while a
// reader keeps merging snapshots.
TEST(Histogram, MultithreadHammer) {
  ro::Histogram h({1.0, 2.0, 4.0, 8.0});
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20'000;
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      (void)h.counts();
      (void)h.count();
      (void)h.sum();
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.observe(static_cast<double>((t + i) % 10));
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();

  const auto counts = h.counts();
  std::uint64_t bucket_total = 0;
  for (const auto c : counts) bucket_total += c;
  const std::uint64_t expected =
      static_cast<std::uint64_t>(kThreads) * kPerThread;
  EXPECT_EQ(bucket_total, expected);
  EXPECT_EQ(h.count(), expected);
}

// ---------------------------------------------------------------------
// Registry + snapshot
// ---------------------------------------------------------------------

TEST(MetricsRegistry, ReturnsSameInstancePerName) {
  ro::MetricsRegistry reg;
  ro::Counter& a = reg.counter("x");
  ro::Counter& b = reg.counter("x");
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(b.total(), 3u);
  ro::Histogram& h1 = reg.histogram("lat", {5.0, 50.0});
  ro::Histogram& h2 = reg.histogram("lat", {1.0});  // bounds ignored here
  EXPECT_EQ(&h1, &h2);
  EXPECT_EQ(h2.bounds(), (std::vector<double>{5.0, 50.0}));
}

TEST(MetricsRegistry, SnapshotIsSortedAndDeterministic) {
  ro::MetricsRegistry reg;
  reg.counter("zebra").add(1);
  reg.counter("alpha").add(2);
  reg.gauge("mid").set(7.0);
  reg.histogram("h", {1.0}).observe(0.5);
  const auto s1 = reg.snapshot();
  const auto s2 = reg.snapshot();
  ASSERT_EQ(s1.counters.size(), 2u);
  EXPECT_EQ(s1.counters[0].first, "alpha");
  EXPECT_EQ(s1.counters[1].first, "zebra");
  EXPECT_EQ(s1.to_json(), s2.to_json());
  EXPECT_TRUE(JsonValidator(s1.to_json()).valid()) << s1.to_json();
}

TEST(MetricsRegistry, SnapshotJsonCarriesValues) {
  ro::MetricsRegistry reg;
  reg.counter("events").add(12);
  reg.gauge("depth").set(3.0);
  const std::string json = reg.snapshot().to_json();
  EXPECT_NE(json.find("\"events\":12"), std::string::npos) << json;
  EXPECT_NE(json.find("\"depth\":3"), std::string::npos) << json;
}

// ---------------------------------------------------------------------
// Spans + trace collector
// ---------------------------------------------------------------------

TEST(Span, NoopWhenTelemetryDisabled) {
  ASSERT_EQ(ro::telemetry(), nullptr);
  ro::Histogram h({1.0});
  {
    ro::Span span("test/span", "test", &h);
  }
  // Disabled telemetry short-circuits even an explicit latency sink.
  EXPECT_EQ(h.count(), 0u);
}

TEST(Span, RecordsIntoCollectorWhenTracing) {
  TelemetryGuard guard;
  ro::TelemetryConfig cfg;
  cfg.trace_path = scratch_file("readys_obs_span.trace.json");
  ASSERT_TRUE(ro::install(cfg));
  ro::Telemetry* t = ro::telemetry();
  ASSERT_NE(t, nullptr);
  {
    ro::Span span("test/outer", "test");
    ro::Span inner("test/inner", "test");
  }
  EXPECT_EQ(t->tracer().size(), 2u);
  const std::string fragment = t->tracer().events_json();
  EXPECT_NE(fragment.find("test/outer"), std::string::npos);
  EXPECT_NE(fragment.find("test/inner"), std::string::npos);
  EXPECT_NE(fragment.find("\"pid\":2"), std::string::npos);
  // A fragment is not a complete JSON document; wrapped it must be.
  EXPECT_TRUE(JsonValidator("[" + fragment + "]").valid());
  fs::remove(cfg.trace_path);
}

TEST(TraceCollector, BoundedWithDroppedCount) {
  ro::TraceCollector collector(/*max_events=*/4);
  for (int i = 0; i < 10; ++i) {
    collector.record("e", "test", static_cast<double>(i), 1.0);
  }
  EXPECT_EQ(collector.size(), 4u);
  EXPECT_EQ(collector.dropped(), 6u);
}

TEST(Span, ObservesLatencyHistogramWhenInstalled) {
  TelemetryGuard guard;
  ASSERT_TRUE(ro::install(ro::TelemetryConfig{}));
  ro::Histogram& h = ro::telemetry()->registry().histogram("lat_us");
  {
    ro::Span span("test/latency", "test", &h);
  }
  EXPECT_EQ(h.count(), 1u);
}

// ---------------------------------------------------------------------
// JSON sink + escaping
// ---------------------------------------------------------------------

TEST(JsonEscape, HandlesSpecialsAndControlChars) {
  EXPECT_EQ(ro::json_escape("plain"), "plain");
  EXPECT_EQ(ro::json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(ro::json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(ro::json_escape("a\nb"), "a\\nb");
  EXPECT_EQ(ro::json_escape(std::string("a\x01") + "b"), "a\\u0001b");
}

TEST(JsonObject, RendersTypedFieldsAndNullsNonFinite) {
  ro::JsonObject o;
  o.field("s", "v").field("i", 7).field("d", 2.5).field("b", true).field(
      "nan", std::numeric_limits<double>::quiet_NaN());
  const std::string json = o.str();
  EXPECT_TRUE(JsonValidator(json).valid()) << json;
  EXPECT_NE(json.find("\"s\":\"v\""), std::string::npos);
  EXPECT_NE(json.find("\"i\":7"), std::string::npos);
  EXPECT_NE(json.find("\"d\":2.5"), std::string::npos);
  EXPECT_NE(json.find("\"b\":true"), std::string::npos);
  EXPECT_NE(json.find("\"nan\":null"), std::string::npos);
}

TEST(JsonlSink, OneValidObjectPerLine) {
  const std::string path = scratch_file("readys_obs_sink.metrics.jsonl");
  {
    ro::JsonlSink sink(path, /*flush_every=*/2);
    for (int i = 0; i < 3; ++i) {
      sink.write(ro::JsonObject().field("row", i).str());
    }
    EXPECT_EQ(sink.rows(), 3u);
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) {
    EXPECT_TRUE(JsonValidator(line).valid()) << line;
    ++lines;
  }
  EXPECT_EQ(lines, 3);
  fs::remove(path);
}

// ---------------------------------------------------------------------
// Run manifests
// ---------------------------------------------------------------------

TEST(RunManifest, SiblingPathConvention) {
  EXPECT_EQ(ro::RunManifest::sibling_path("results.csv"),
            "results.csv.manifest.json");
  EXPECT_EQ(ro::RunManifest::sibling_path("out/fig3.csv"),
            "out/fig3.csv.manifest.json");
}

TEST(RunManifest, WritesValidJsonWithConfigAndOutputs) {
  ro::RunManifest m("test_tool");
  m.set("app", "cholesky");
  m.set("tiles", 8);
  m.set("sigma", 0.25);
  m.set("resume", false);
  m.add_output("fig.csv");
  const std::string path = scratch_file("readys_obs.manifest.json");
  m.write(path);
  const std::string json = slurp(path);
  EXPECT_TRUE(JsonValidator(json).valid()) << json;
  EXPECT_NE(json.find("\"schema\":\"readys-manifest/1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"tool\":\"test_tool\""), std::string::npos);
  EXPECT_NE(json.find("\"app\":\"cholesky\""), std::string::npos);
  EXPECT_NE(json.find("\"outputs\":[\"fig.csv\"]"), std::string::npos);
  EXPECT_NE(json.find("\"start_time\""), std::string::npos);
  EXPECT_NE(json.find("\"build\""), std::string::npos);
  fs::remove(path);
}

// ---------------------------------------------------------------------
// Lifecycle + end-to-end trace/metrics files
// ---------------------------------------------------------------------

TEST(Telemetry, InstallIsExclusiveAndShutdownUninstalls) {
  TelemetryGuard guard;
  EXPECT_EQ(ro::telemetry(), nullptr);
  EXPECT_FALSE(ro::enabled());
  ASSERT_TRUE(ro::install(ro::TelemetryConfig{}));
  EXPECT_TRUE(ro::enabled());
  EXPECT_FALSE(ro::install(ro::TelemetryConfig{}));  // already installed
  ro::shutdown();
  EXPECT_EQ(ro::telemetry(), nullptr);
  ro::shutdown();  // idempotent
}

TEST(Telemetry, WellKnownCountersLandInSnapshot) {
  TelemetryGuard guard;
  ASSERT_TRUE(ro::install(ro::TelemetryConfig{}));
  ro::Telemetry* t = ro::telemetry();
  t->sim_events.add(5);
  t->sched_decisions.add(2);
  const std::string json = t->registry().snapshot().to_json();
  EXPECT_NE(json.find("\"sim.events\":5"), std::string::npos) << json;
  EXPECT_NE(json.find("\"sched.decisions\":2"), std::string::npos) << json;
}

TEST(Telemetry, FinalizeWritesMetricsSnapshotRow) {
  TelemetryGuard guard;
  ro::TelemetryConfig cfg;
  cfg.metrics_path = scratch_file("readys_obs_final.metrics.jsonl");
  ASSERT_TRUE(ro::install(cfg));
  ro::telemetry()->env_steps.add(3);
  ro::shutdown();
  const std::string contents = slurp(cfg.metrics_path);
  EXPECT_NE(contents.find("\"row\":\"metrics_snapshot\""),
            std::string::npos);
  EXPECT_NE(contents.find("\"rl.env_steps\":3"), std::string::npos);
  // Every line must be a standalone JSON object.
  std::istringstream in(contents);
  std::string line;
  while (std::getline(in, line)) {
    EXPECT_TRUE(JsonValidator(line).valid()) << line;
  }
  fs::remove(cfg.metrics_path);
}

// ---------------------------------------------------------------------
// Merged Chrome trace: simulated schedule (pid 1) + wall-clock (pid 2)
// ---------------------------------------------------------------------

namespace {

struct Executed {
  readys::dag::TaskGraph graph = readys::dag::cholesky_graph(3);
  readys::sim::Platform platform = readys::sim::Platform::hybrid(1, 1);
  readys::sim::CostModel costs = readys::sim::CostModel::cholesky();
  readys::sim::Trace trace;

  Executed() {
    readys::sched::MctScheduler mct;
    readys::sim::Simulator sim(graph, platform, costs, {0.0, 1});
    trace = sim.run(mct).trace;
  }
};

}  // namespace

// The 144 golden traces in test_sim_equivalence depend on this equality:
// the refactor that exposed chrome_trace_events() must not move a byte
// of the to_chrome_trace output.
TEST(MergedTrace, ToChromeTraceIsExactlyWrappedFragment) {
  Executed fx;
  const std::string fragment =
      readys::sim::chrome_trace_events(fx.trace, fx.graph, fx.platform);
  EXPECT_EQ(readys::sim::to_chrome_trace(fx.trace, fx.graph, fx.platform),
            "{\"traceEvents\":[" + fragment + "],\"displayTimeUnit\":\"ms\"}");
}

TEST(MergedTrace, FileShowsBothSimulatedAndWallClockTimelines) {
  TelemetryGuard guard;
  Executed fx;
  ro::TelemetryConfig cfg;
  cfg.trace_path = scratch_file("readys_obs_merged.trace.json");
  ASSERT_TRUE(ro::install(cfg));
  {
    ro::Span span("train/step", "train");
  }
  ro::telemetry()->add_trace_fragment(
      readys::sim::chrome_trace_events(fx.trace, fx.graph, fx.platform));
  ro::shutdown();

  const std::string json = slurp(cfg.trace_path);
  EXPECT_TRUE(JsonValidator(json).valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"pid\":1"), std::string::npos);  // sim schedule
  EXPECT_NE(json.find("\"pid\":2"), std::string::npos);  // wall clock
  EXPECT_NE(json.find("POTRF"), std::string::npos);
  EXPECT_NE(json.find("train/step"), std::string::npos);
  fs::remove(cfg.trace_path);
}

TEST(MergedTrace, EmptyFragmentsAreSkipped) {
  const std::string path = scratch_file("readys_obs_empty.trace.json");
  ro::write_chrome_trace_file(path, {"", "{\"ph\":\"M\",\"pid\":9,"
                                         "\"name\":\"process_name\","
                                         "\"args\":{\"name\":\"x\"}}",
                                     ""});
  const std::string json = slurp(path);
  EXPECT_TRUE(JsonValidator(json).valid()) << json;
  // No dangling commas from the empty fragments.
  EXPECT_EQ(json.find(",,"), std::string::npos);
  EXPECT_EQ(json.find("[,"), std::string::npos);
  fs::remove(path);
}

// ---------------------------------------------------------------------
// Sink durability: write failures must surface, not vanish
// ---------------------------------------------------------------------

TEST(JsonlSink, SurfacesEnospcWithPathAndCountsErrors) {
  // /dev/full fails every write with ENOSPC — the canonical disk-full
  // stand-in (same contract as the PR 5 checkpoint durability tests).
  if (!fs::exists("/dev/full")) {
    GTEST_SKIP() << "/dev/full not available on this platform";
  }
  ro::JsonlSink sink("/dev/full", /*flush_every=*/1);
  try {
    // One row is enough: flush_every=1 forces the flush that hits the
    // kernel, and the failure must carry the sink path.
    sink.write(ro::JsonObject().field("row", 1).str());
    FAIL() << "write to /dev/full did not throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("/dev/full"), std::string::npos)
        << e.what();
  }
  EXPECT_GE(sink.write_errors(), 1u);
  // The stream fault was cleared, so later writes try again (and fail
  // again) instead of silently no-oping forever.
  EXPECT_THROW(sink.write(ro::JsonObject().field("row", 2).str()),
               std::runtime_error);
  EXPECT_GE(sink.write_errors(), 2u);
}

TEST(JsonlSink, ErrorsFeedSinkErrorsMetricWhenInstalled) {
  if (!fs::exists("/dev/full")) {
    GTEST_SKIP() << "/dev/full not available on this platform";
  }
  const bool installed = ro::install(ro::TelemetryConfig{});
  if (ro::telemetry() == nullptr) GTEST_SKIP() << "telemetry unavailable";
  const std::uint64_t before = ro::telemetry()->sink_errors.total();
  {
    ro::JsonlSink sink("/dev/full", /*flush_every=*/1);
    EXPECT_THROW(sink.write(ro::JsonObject().field("x", 1).str()),
                 std::runtime_error);
  }  // destructor's final flush must swallow, not terminate
  EXPECT_GT(ro::telemetry()->sink_errors.total(), before);
  if (installed) ro::shutdown();
}

TEST(JsonlSink, HealthyPathReportsZeroWriteErrors) {
  const std::string path = scratch_file("readys_obs_sink_healthy.jsonl");
  {
    ro::JsonlSink sink(path, /*flush_every=*/1);
    sink.write(ro::JsonObject().field("ok", true).str());
    sink.flush();
    EXPECT_EQ(sink.write_errors(), 0u);
  }
  fs::remove(path);
}
