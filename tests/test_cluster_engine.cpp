// Bit-exactness contract of the sharded simulation core: for ANY shard
// count K, a ShardedEngine execution must be event-for-event identical
// to the single-heap SimEngine under the same seed. The existing golden
// suite (tests/test_sim_equivalence.cpp) pins SimEngine to the recorded
// seed-engine traces; here every pairwise SimEngine == ShardedEngine
// check extends that chain of custody to the cluster core without
// duplicating (or regenerating) the golden table.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "cluster/cluster_sim.hpp"
#include "cluster/partition.hpp"
#include "cluster/sharded_engine.hpp"
#include "dag/cholesky.hpp"
#include "dag/lu.hpp"
#include "dag/random_dag.hpp"
#include "sched/greedy_eft.hpp"
#include "sched/heft.hpp"
#include "sched/mct.hpp"
#include "sched/random_sched.hpp"
#include "sim/simulator.hpp"

namespace rc = readys::cluster;
namespace rd = readys::dag;
namespace rs = readys::sim;
namespace rx = readys::sched;
namespace ru = readys::util;

namespace {

std::uint64_t fnv1a(std::uint64_t h, const void* data, std::size_t n) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

std::uint64_t trace_hash(const rs::Trace& trace) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const auto& e : trace.entries()) {
    h = fnv1a(h, &e.task, sizeof(e.task));
    h = fnv1a(h, &e.resource, sizeof(e.resource));
    h = fnv1a(h, &e.start, sizeof(e.start));
    h = fnv1a(h, &e.finish, sizeof(e.finish));
  }
  return h;
}

struct Case {
  std::string name;
  rd::TaskGraph graph;
  rs::CostModel costs;
  rs::Platform platform;
};

std::vector<Case> make_cases() {
  std::vector<Case> cases;
  cases.push_back({"chol4", rd::cholesky_graph(4), rs::CostModel::cholesky(),
                   rs::Platform::hybrid(2, 2)});
  cases.push_back({"chol8", rd::cholesky_graph(8), rs::CostModel::cholesky(),
                   rs::Platform::hybrid(2, 2)});
  cases.push_back(
      {"lu5", rd::lu_graph(5), rs::CostModel::lu(), rs::Platform::cpus(3)});
  ru::Rng rng(11);
  cases.push_back({"rand1", rd::random_layered_dag({6, 5, 0.4, 4, true}, rng),
                   rs::CostModel::cholesky(), rs::Platform::hybrid(4, 4)});
  return cases;
}

std::unique_ptr<rs::Scheduler> make_sched(const std::string& name,
                                          std::uint64_t seed) {
  if (name == "heft") return std::make_unique<rx::HeftScheduler>();
  if (name == "mct") return std::make_unique<rx::MctScheduler>();
  if (name == "random") return std::make_unique<rx::RandomScheduler>(seed);
  if (name == "eft") return std::make_unique<rx::GreedyEftScheduler>();
  throw std::logic_error("unknown scheduler " + name);
}

}  // namespace

TEST(ClusterEngine, BitExactWithSimEngineAtEveryShardCount) {
  const char* scheds[] = {"heft", "mct", "random", "eft"};
  for (const Case& c : make_cases()) {
    for (const char* sname : scheds) {
      for (const double sigma : {0.0, 0.1, 0.5}) {
        for (const std::uint64_t seed : {1ull, 7ull}) {
          auto sched = make_sched(sname, seed);
          rs::Simulator base(c.graph, c.platform, c.costs, {sigma, seed});
          const auto ref = base.run(*sched);
          for (int k = 1; k <= c.platform.size(); k *= 2) {
            auto sched_k = make_sched(sname, seed);
            rc::ClusterSimulator::Options opt;
            opt.sigma = sigma;
            opt.seed = seed;
            opt.shards = k;
            rc::ClusterSimulator sim(c.graph, c.platform, c.costs, opt);
            const auto got = sim.run(*sched_k);
            ASSERT_DOUBLE_EQ(ref.makespan, got.makespan)
                << c.name << "/" << sname << " sigma=" << sigma
                << " seed=" << seed << " K=" << k;
            ASSERT_EQ(trace_hash(ref.trace), trace_hash(got.trace))
                << c.name << "/" << sname << " sigma=" << sigma
                << " seed=" << seed << " K=" << k;
          }
        }
      }
    }
  }
}

TEST(ClusterEngine, BitExactUnderFaultInjection) {
  const auto graph = rd::cholesky_graph(8);
  const auto costs = rs::CostModel::cholesky();
  const auto platform = rs::Platform::hybrid(4, 4);
  rs::FaultModel faults;
  faults.outage_rate = 0.002;
  faults.mean_downtime = 60.0;
  faults.slowdown_rate = 0.004;
  faults.mean_slowdown = 30.0;
  faults.slowdown_factor = 2.0;
  faults.task_failure_prob = 0.02;
  for (const std::uint64_t seed : {3ull, 11ull}) {
    rx::MctScheduler ref_sched;
    rs::Simulator::Options base_opt;
    base_opt.sigma = 0.1;
    base_opt.seed = seed;
    base_opt.faults = faults;
    rs::Simulator base(graph, platform, costs, base_opt);
    const auto ref = base.run(ref_sched);
    for (const int k : {1, 2, 4, 8}) {
      rx::MctScheduler sched;
      rc::ClusterSimulator::Options opt;
      opt.sigma = 0.1;
      opt.seed = seed;
      opt.shards = k;
      opt.faults = faults;
      rc::ClusterSimulator sim(graph, platform, costs, opt);
      const auto got = sim.run(sched);
      ASSERT_DOUBLE_EQ(ref.makespan, got.makespan) << "K=" << k;
      ASSERT_EQ(trace_hash(ref.trace), trace_hash(got.trace)) << "K=" << k;
    }
  }
}

TEST(ClusterEngine, BitExactUnderCommunicationModel) {
  const auto graph = rd::cholesky_graph(6);
  const auto costs = rs::CostModel::cholesky();
  const auto platform = rs::Platform::hybrid(2, 2);
  for (const std::uint64_t seed : {1ull, 7ull}) {
    rx::MctScheduler ref_sched(/*comm_aware=*/true);
    rs::Simulator::Options base_opt;
    base_opt.sigma = 0.1;
    base_opt.seed = seed;
    base_opt.comm = rs::CommModel::pcie_like();
    rs::Simulator base(graph, platform, costs, base_opt);
    const auto ref = base.run(ref_sched);
    for (const int k : {1, 2, 4}) {
      rx::MctScheduler sched(/*comm_aware=*/true);
      rc::ClusterSimulator::Options opt;
      opt.sigma = 0.1;
      opt.seed = seed;
      opt.shards = k;
      opt.comm = rs::CommModel::pcie_like();
      rc::ClusterSimulator sim(graph, platform, costs, opt);
      const auto got = sim.run(sched);
      ASSERT_DOUBLE_EQ(ref.makespan, got.makespan) << "K=" << k;
      ASSERT_EQ(trace_hash(ref.trace), trace_hash(got.trace)) << "K=" << k;
    }
  }
}

TEST(ClusterEngine, ShardTracesPartitionTheGlobalTrace) {
  const auto graph = rd::cholesky_graph(8);
  const auto costs = rs::CostModel::cholesky();
  const auto platform = rs::Platform::hybrid(4, 4);
  rx::MctScheduler sched;
  rc::ClusterSimulator::Options opt;
  opt.sigma = 0.1;
  opt.seed = 5;
  opt.shards = 4;
  rc::ClusterSimulator sim(graph, platform, costs, opt);
  const auto r = sim.run(sched);
  ASSERT_EQ(r.shard_traces.size(), 4u);
  const rc::Partition part =
      rc::Partition::by_type_round_robin(platform, 4);
  std::size_t total = 0;
  for (int s = 0; s < 4; ++s) {
    for (const auto& e : r.shard_traces[static_cast<std::size_t>(s)]
                             .entries()) {
      EXPECT_EQ(part.shard(e.resource), s)
          << "entry in the wrong shard's trace";
    }
    total += r.shard_traces[static_cast<std::size_t>(s)].size();
  }
  EXPECT_EQ(total, r.trace.size());
}

TEST(ClusterEngine, PartitionKeepsShardsHeterogeneous) {
  const auto platform = rs::Platform::hybrid(8, 4);
  const auto part = rc::Partition::by_type_round_robin(platform, 4);
  ASSERT_EQ(part.members.size(), 4u);
  for (int s = 0; s < 4; ++s) {
    int cpus = 0;
    int gpus = 0;
    for (const rs::ResourceId r : part.members[static_cast<std::size_t>(s)]) {
      EXPECT_EQ(part.shard(r), s);
      (platform.type(r) == rs::ResourceType::kCpu ? cpus : gpus)++;
    }
    EXPECT_EQ(cpus, 2);  // 8 CPUs round-robined over 4 shards
    EXPECT_EQ(gpus, 1);  // 4 GPUs round-robined over 4 shards
    // Ascending member lists, as the scoped views require.
    const auto& m = part.members[static_cast<std::size_t>(s)];
    for (std::size_t i = 1; i < m.size(); ++i) EXPECT_LT(m[i - 1], m[i]);
  }
  EXPECT_THROW(rc::Partition::by_type_round_robin(platform, 0),
               std::invalid_argument);
  EXPECT_THROW(rc::Partition::by_type_round_robin(platform, 13),
               std::invalid_argument);
}

TEST(ClusterEngine, ViewExposesConsistentScalarsAndTables) {
  const auto graph = rd::cholesky_graph(4);
  const auto costs = rs::CostModel::cholesky();
  const auto platform = rs::Platform::hybrid(2, 2);
  rc::ShardedEngine engine(graph, platform, costs, rs::CommModel::free(),
                           rs::FaultModel::none(), 0.0, 1, 2);
  const rs::EngineView v = engine.view();
  EXPECT_EQ(v.resources().size(), 4u);
  EXPECT_EQ(v.ready().size(), engine.ready().size());
  EXPECT_FALSE(v.any_running());
  for (const rs::ResourceId r : v.resources()) {
    EXPECT_TRUE(v.is_idle(r));
    EXPECT_DOUBLE_EQ(v.expected_available_at(r), 0.0);
  }
  // Start the single source; the view must track it.
  const auto t0 = engine.ready().front();
  engine.start(t0, 0);
  const rs::EngineView v2 = engine.view();
  EXPECT_TRUE(v2.any_running());
  EXPECT_FALSE(v2.is_idle(0));
  EXPECT_EQ(v2.running_on(0), t0);
  EXPECT_GT(v2.expected_available_at(0), 0.0);
  EXPECT_FALSE(v2.is_ready(t0));
}
