// DecisionService behavior suite: bounded admission + shedding,
// deterministic multi-tenant completion (pump mode and worker threads),
// deadline degradation to one-shot MCT, transient-fault retry with
// eventual quarantine, and the drain / shutdown / abort lifecycles.
// The bit-identical poison-session isolation proof lives in
// tests/chaos/test_chaos_poison_session.cpp.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/readys.hpp"

namespace rc = readys::core;
namespace rr = readys::rl;
namespace rv = readys::serve;
namespace rs = readys::sim;

namespace {

rr::AgentConfig small_agent() {
  rr::AgentConfig cfg;
  cfg.hidden = 8;
  cfg.gcn_layers = 1;
  cfg.window = 1;
  cfg.seed = 3;
  return cfg;
}

rr::PolicyNet small_net(const rr::AgentConfig& cfg) {
  return rr::PolicyNet(rr::StateEncoder::node_feature_width(4),
                       rr::StateEncoder::kResourceFeatureWidth, cfg);
}

rv::ServiceConfig pump_config() {
  rv::ServiceConfig sc;
  sc.workers = 0;  // manual pump mode: fully deterministic rounds
  sc.record_actions = true;
  return sc;
}

rv::SessionSpec spec_for(readys::core::App app, int tiles,
                         std::uint64_t seed) {
  rv::SessionSpec s;
  s.app = app;
  s.tiles = tiles;
  s.seed = seed;
  s.deadline_us = -1.0;  // timing-independent decisions
  return s;
}

/// Pumps until the service has nothing left to do.
void pump_dry(rv::DecisionService& svc) {
  for (int guard = 0; guard < 100000; ++guard) {
    if (svc.pump() == 0 && svc.queue_depth() == 0) return;
  }
  FAIL() << "service did not drain in 100k rounds";
}

}  // namespace

TEST(Serve, AdmissionIsBoundedAndShedsWithReason) {
  const auto agent = small_agent();
  const auto net = small_net(agent);
  rv::ServiceConfig sc = pump_config();
  sc.queue_capacity = 2;
  rv::DecisionService svc(net, agent, sc);

  const auto a = svc.submit(spec_for(rc::App::kCholesky, 3, 1));
  const auto b = svc.submit(spec_for(rc::App::kCholesky, 3, 2));
  const auto c = svc.submit(spec_for(rc::App::kCholesky, 3, 3));
  EXPECT_TRUE(a.admitted);
  EXPECT_TRUE(b.admitted);
  EXPECT_FALSE(c.admitted);
  EXPECT_EQ(c.reason, "queue full");
  EXPECT_EQ(svc.counters().admitted, 2u);
  EXPECT_EQ(svc.counters().shed, 1u);
  EXPECT_EQ(svc.queue_depth(), 2u);

  // Shedding is not sticky: capacity freed by progress readmits.
  pump_dry(svc);
  const auto d = svc.submit(spec_for(rc::App::kCholesky, 3, 4));
  EXPECT_TRUE(d.admitted);
  svc.shutdown();
}

TEST(Serve, PumpModeCompletesMixedCatalogDeterministically) {
  const auto agent = small_agent();
  const auto net = small_net(agent);

  auto run_once = [&]() {
    rv::DecisionService svc(net, agent, pump_config());
    svc.submit(spec_for(rc::App::kCholesky, 4, 11));
    svc.submit(spec_for(rc::App::kLu, 3, 22));
    svc.submit(spec_for(rc::App::kQr, 3, 33));
    pump_dry(svc);
    auto results = svc.results();
    svc.shutdown();
    return results;
  };

  const auto first = run_once();
  const auto second = run_once();
  ASSERT_EQ(first.size(), 3u);
  ASSERT_EQ(second.size(), 3u);
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].state, rv::SessionState::kCompleted);
    EXPECT_GT(first[i].makespan, 0.0);
    EXPECT_GT(first[i].heft_reference, 0.0);
    EXPECT_GT(first[i].decisions, 0u);
    // Bit-identical across runs: same ids, same traces, same makespans.
    EXPECT_EQ(first[i].id, second[i].id);
    EXPECT_EQ(first[i].actions, second[i].actions);
    EXPECT_EQ(first[i].makespan, second[i].makespan);
  }
}

TEST(Serve, WorkerThreadsCompleteEverythingOnShutdown) {
  const auto agent = small_agent();
  const auto net = small_net(agent);
  rv::ServiceConfig sc;
  sc.workers = 2;
  sc.max_active = 4;
  sc.watchdog_period_ms = 50.0;
  rv::DecisionService svc(net, agent, sc);

  const int kSessions = 12;
  int admitted = 0;
  for (int i = 0; i < kSessions; ++i) {
    if (svc.submit(spec_for(rc::App::kCholesky, 3, 100 + i)).admitted) {
      ++admitted;
    }
  }
  svc.shutdown();  // drain + wait: nothing in flight afterwards

  const auto c = svc.counters();
  EXPECT_EQ(c.admitted, static_cast<std::uint64_t>(admitted));
  EXPECT_EQ(c.completed, static_cast<std::uint64_t>(admitted));
  EXPECT_EQ(c.quarantined, 0u);
  EXPECT_EQ(c.aborted, 0u);
  EXPECT_EQ(svc.results().size(), static_cast<std::size_t>(admitted));
  EXPECT_FALSE(svc.stalled());

  // A drained service sheds new work with the right reason.
  const auto late = svc.submit(spec_for(rc::App::kCholesky, 3, 999));
  EXPECT_FALSE(late.admitted);
  EXPECT_EQ(late.reason, "stopped");
}

TEST(Serve, DeadlineBlownDegradesToMctAndStillCompletes) {
  const auto agent = small_agent();
  const auto net = small_net(agent);
  rv::ServiceConfig sc = pump_config();
  rv::DecisionService svc(net, agent, sc);

  rv::SessionSpec spec = spec_for(rc::App::kCholesky, 4, 7);
  spec.deadline_us = 1e-6;  // unmeetable: every decision degrades
  svc.submit(spec);
  pump_dry(svc);

  const auto results = svc.results();
  ASSERT_EQ(results.size(), 1u);
  const auto& r = results[0];
  EXPECT_EQ(r.state, rv::SessionState::kCompleted);
  EXPECT_GT(r.makespan, 0.0);
  EXPECT_GT(r.decisions, 0u);
  // Every decision blew the budget and was answered by one-shot MCT.
  EXPECT_EQ(r.timeouts, r.decisions);
  EXPECT_EQ(r.fallbacks, r.decisions);
  EXPECT_EQ(svc.counters().timeouts, r.timeouts);
  EXPECT_EQ(svc.counters().fallbacks, r.fallbacks);
  svc.shutdown();
}

TEST(Serve, PerSessionDeadlineOverridesServiceDefault) {
  const auto agent = small_agent();
  const auto net = small_net(agent);
  rv::ServiceConfig sc = pump_config();
  sc.deadline_us = 1e-6;  // service default: unmeetable
  rv::DecisionService svc(net, agent, sc);

  rv::SessionSpec opted_out = spec_for(rc::App::kCholesky, 3, 1);
  opted_out.deadline_us = -1.0;  // disables the deadline for this session
  rv::SessionSpec inherits = spec_for(rc::App::kCholesky, 3, 2);
  inherits.deadline_us = 0.0;  // inherits the unmeetable default
  const auto id_out = svc.submit(opted_out).id;
  svc.submit(inherits);
  pump_dry(svc);

  for (const auto& r : svc.results()) {
    EXPECT_EQ(r.state, rv::SessionState::kCompleted);
    if (r.id == id_out) {
      EXPECT_EQ(r.timeouts, 0u);
    } else {
      EXPECT_EQ(r.timeouts, r.decisions);
    }
  }
  svc.shutdown();
}

TEST(Serve, ZeroDeadlineDegradesEveryDecisionDeterministically) {
  // The deadline_us == 0 edge: a literal zero budget means every
  // decision degrades to one-shot MCT without the clock being consulted
  // — fully deterministic, unlike the 1e-6 "unmeetable but timed" case.
  const auto agent = small_agent();
  const auto net = small_net(agent);
  auto run = [&](std::uint64_t seed) {
    rv::ServiceConfig sc = pump_config();
    sc.deadline_us = 0.0;
    rv::DecisionService svc(net, agent, sc);
    auto direct = spec_for(rc::App::kCholesky, 4, seed);
    direct.deadline_us = 0.0;  // inherits the zero-budget default
    svc.submit(direct);
    auto inherit = spec_for(rc::App::kLu, 3, seed + 1);
    inherit.deadline_us = 0.0;
    svc.submit(inherit);
    pump_dry(svc);
    svc.shutdown();
    return svc.results();
  };
  const auto a = run(7);
  const auto b = run(7);
  ASSERT_EQ(a.size(), 2u);
  ASSERT_EQ(b.size(), 2u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].state, rv::SessionState::kCompleted);
    EXPECT_GT(a[i].decisions, 0u);
    EXPECT_EQ(a[i].timeouts, a[i].decisions);
    EXPECT_EQ(a[i].fallbacks, a[i].decisions);
    // Bit-identical across runs: no wall-clock coupling anywhere.
    EXPECT_EQ(a[i].actions, b[i].actions);
  }
}

TEST(Serve, NegativeDeadlineOptsOutOfZeroBudgetDefault) {
  // spec.deadline_us < 0 must opt a session out even when the service
  // default is the always-degrade zero budget.
  const auto agent = small_agent();
  const auto net = small_net(agent);
  rv::ServiceConfig sc = pump_config();
  sc.deadline_us = 0.0;
  rv::DecisionService svc(net, agent, sc);
  rv::SessionSpec opted_out = spec_for(rc::App::kCholesky, 3, 1);
  opted_out.deadline_us = -1.0;
  const auto id_out = svc.submit(opted_out).id;
  rv::SessionSpec inherits = spec_for(rc::App::kCholesky, 3, 2);
  inherits.deadline_us = 0.0;  // inherits the zero-budget default
  svc.submit(inherits);
  pump_dry(svc);
  for (const auto& r : svc.results()) {
    EXPECT_EQ(r.state, rv::SessionState::kCompleted);
    if (r.id == id_out) {
      EXPECT_EQ(r.timeouts, 0u);
      EXPECT_EQ(r.fallbacks, 0u);
    } else {
      EXPECT_EQ(r.timeouts, r.decisions);
    }
  }
  svc.shutdown();
}

TEST(Serve, EnvFaultRetriesThenQuarantines) {
  const auto agent = small_agent();
  const auto net = small_net(agent);
  rv::ServiceConfig sc = pump_config();
  sc.max_retries = 2;
  sc.retry_backoff_ms = 0.0;  // immediate re-eligibility in pump mode
  rv::DecisionService svc(net, agent, sc);

  // Every resource dies almost immediately and permanently; the env
  // throws "platform unrecoverable" (a transient classification: the
  // cluster might recover on resubmission — here it never does).
  rv::SessionSpec spec = spec_for(rc::App::kCholesky, 4, 5);
  spec.faults.outage_rate = 1e6;
  spec.faults.mean_downtime = 0.0;
  spec.faults.min_survivors_per_type = 0;
  svc.submit(spec);
  pump_dry(svc);

  const auto results = svc.results();
  ASSERT_EQ(results.size(), 1u);
  const auto& r = results[0];
  EXPECT_EQ(r.state, rv::SessionState::kQuarantined);
  EXPECT_NE(r.error.find("env fault"), std::string::npos);
  EXPECT_NE(r.error.find("retries exhausted"), std::string::npos);
  EXPECT_EQ(r.attempts, 3);  // first run + 2 retries
  EXPECT_EQ(svc.counters().retries, 2u);
  EXPECT_EQ(svc.counters().quarantined, 1u);
  svc.shutdown();
}

TEST(Serve, TransientFaultDoesNotDisturbNeighbors) {
  const auto agent = small_agent();
  const auto net = small_net(agent);

  auto run_once = [&](bool with_faulty) {
    rv::DecisionService svc(net, agent, pump_config());
    svc.submit(spec_for(rc::App::kLu, 3, 41));
    if (with_faulty) {
      rv::SessionSpec bad = spec_for(rc::App::kCholesky, 4, 5);
      bad.faults.outage_rate = 1e6;
      bad.faults.mean_downtime = 0.0;
      bad.faults.min_survivors_per_type = 0;
      svc.submit(bad);
    }
    svc.submit(spec_for(rc::App::kQr, 3, 42));
    pump_dry(svc);
    auto results = svc.results();
    svc.shutdown();
    return results;
  };

  const auto with_bad = run_once(true);
  const auto without = run_once(false);
  ASSERT_EQ(with_bad.size(), 3u);
  ASSERT_EQ(without.size(), 2u);

  // The healthy sessions' traces are identical whether or not the
  // faulty tenant shared their batches.
  std::vector<rv::SessionResult> healthy;
  for (const auto& r : with_bad) {
    if (r.state == rv::SessionState::kCompleted) healthy.push_back(r);
  }
  ASSERT_EQ(healthy.size(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(healthy[i].actions, without[i].actions);
    EXPECT_EQ(healthy[i].makespan, without[i].makespan);
  }
}

TEST(Serve, AbortShutdownRetiresInFlightDeterministically) {
  const auto agent = small_agent();
  const auto net = small_net(agent);
  rv::DecisionService svc(net, agent, pump_config());

  svc.submit(spec_for(rc::App::kCholesky, 4, 1));
  svc.submit(spec_for(rc::App::kCholesky, 4, 2));
  // A few rounds of progress, then the plug is pulled.
  for (int i = 0; i < 3; ++i) svc.pump();
  svc.abort_shutdown();

  const auto results = svc.results();
  ASSERT_EQ(results.size(), 2u);
  for (const auto& r : results) {
    EXPECT_EQ(r.state, rv::SessionState::kAborted);
    EXPECT_EQ(r.error, "service aborted");
  }
  EXPECT_EQ(svc.counters().aborted, 2u);
  EXPECT_TRUE(svc.idle());
  // Post-abort submissions shed as "stopped".
  EXPECT_EQ(svc.submit(spec_for(rc::App::kCholesky, 3, 9)).reason,
            "stopped");
}

TEST(Serve, DrainRejectsNewWorkButFinishesInFlight) {
  const auto agent = small_agent();
  const auto net = small_net(agent);
  rv::DecisionService svc(net, agent, pump_config());

  svc.submit(spec_for(rc::App::kCholesky, 3, 1));
  svc.drain();
  const auto rejected = svc.submit(spec_for(rc::App::kCholesky, 3, 2));
  EXPECT_FALSE(rejected.admitted);
  EXPECT_EQ(rejected.reason, "draining");

  pump_dry(svc);
  const auto results = svc.results();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].state, rv::SessionState::kCompleted);
  svc.shutdown();
}

TEST(Serve, PumpThrowsWhenWorkersAreRunning) {
  const auto agent = small_agent();
  const auto net = small_net(agent);
  rv::ServiceConfig sc;
  sc.workers = 1;
  rv::DecisionService svc(net, agent, sc);
  EXPECT_THROW(svc.pump(), std::logic_error);
  svc.shutdown();
}

TEST(Serve, ResultsAreStableAcrossBatchWidths) {
  // Multiplexing width is an implementation knob, not a semantic one:
  // forward_batched matches forward bit-for-bit, so the same sessions
  // produce the same traces whether they share rounds or run alone.
  const auto agent = small_agent();
  const auto net = small_net(agent);

  auto run_width = [&](std::size_t width) {
    rv::ServiceConfig sc = pump_config();
    sc.max_active = width;
    rv::DecisionService svc(net, agent, sc);
    for (int i = 0; i < 4; ++i) {
      svc.submit(spec_for(rc::App::kCholesky, 3, 60 + i));
    }
    pump_dry(svc);
    auto results = svc.results();
    svc.shutdown();
    return results;
  };

  const auto wide = run_width(4);
  const auto narrow = run_width(1);
  ASSERT_EQ(wide.size(), narrow.size());
  for (std::size_t i = 0; i < wide.size(); ++i) {
    EXPECT_EQ(wide[i].actions, narrow[i].actions);
    EXPECT_EQ(wide[i].makespan, narrow[i].makespan);
  }
}
