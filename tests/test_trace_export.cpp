#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "dag/cholesky.hpp"
#include "sched/mct.hpp"
#include "sim/simulator.hpp"
#include "sim/trace_export.hpp"

namespace rd = readys::dag;
namespace rs = readys::sim;

namespace {

struct Executed {
  rd::TaskGraph graph = rd::cholesky_graph(3);
  rs::Platform platform = rs::Platform::hybrid(1, 1);
  rs::CostModel costs = rs::CostModel::cholesky();
  rs::Trace trace;

  Executed() {
    readys::sched::MctScheduler mct;
    rs::Simulator sim(graph, platform, costs, {0.0, 1});
    trace = sim.run(mct).trace;
  }
};

}  // namespace

TEST(ChromeTrace, ContainsEveryTaskAndResourceLabels) {
  Executed fx;
  const std::string json = rs::to_chrome_trace(fx.trace, fx.graph, fx.platform);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("CPU 0"), std::string::npos);
  EXPECT_NE(json.find("GPU 1"), std::string::npos);
  std::size_t events = 0;
  for (std::size_t p = json.find("\"ph\":\"X\""); p != std::string::npos;
       p = json.find("\"ph\":\"X\"", p + 1)) {
    ++events;
  }
  EXPECT_EQ(events, fx.graph.num_tasks());
  // Kernel names appear as event labels.
  EXPECT_NE(json.find("POTRF"), std::string::npos);
}

TEST(ChromeTrace, WritesFile) {
  Executed fx;
  const auto path =
      (std::filesystem::temp_directory_path() / "readys_trace.json").string();
  rs::write_chrome_trace(fx.trace, fx.graph, fx.platform, path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  EXPECT_EQ(contents, rs::to_chrome_trace(fx.trace, fx.graph, fx.platform));
  std::filesystem::remove(path);
  EXPECT_THROW(
      rs::write_chrome_trace(fx.trace, fx.graph, fx.platform, "/nope/x.json"),
      std::runtime_error);
}

TEST(AsciiGantt, OneRowPerResourceWithBusyCells) {
  Executed fx;
  const std::string gantt =
      rs::to_ascii_gantt(fx.trace, fx.graph, fx.platform, 60);
  EXPECT_NE(gantt.find("CPU 0 |"), std::string::npos);
  EXPECT_NE(gantt.find("GPU 1 |"), std::string::npos);
  EXPECT_NE(gantt.find("makespan:"), std::string::npos);
  // The GPU runs the bulk of the work; its row must contain busy cells.
  const auto gpu_row_start = gantt.find("GPU 1 |");
  const auto row = gantt.substr(gpu_row_start, 60);
  EXPECT_NE(row.find_first_not_of("GPU 1|. \n"), std::string::npos);
}

TEST(AsciiGantt, EmptyTraceHandled) {
  Executed fx;
  rs::Trace empty;
  const std::string gantt =
      rs::to_ascii_gantt(empty, fx.graph, fx.platform, 40);
  EXPECT_NE(gantt.find("empty"), std::string::npos);
}
