// Fault-injection suite: the bit-exactness pin for FaultModel::none(),
// the kill / re-execution semantics of outages and task failures, the
// graceful degradation of every scheduler, and the liveness property
// under the survivor guard.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "dag/cholesky.hpp"
#include "dag/lu.hpp"
#include "sched/greedy_eft.hpp"
#include "sched/heft.hpp"
#include "sched/mct.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace rd = readys::dag;
namespace rs = readys::sim;
namespace rx = readys::sched;
namespace ru = readys::util;

namespace {

std::uint64_t fnv1a(std::uint64_t h, const void* data, std::size_t n) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

std::uint64_t trace_hash(const rs::Trace& trace) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const auto& e : trace.entries()) {
    h = fnv1a(h, &e.task, sizeof(e.task));
    h = fnv1a(h, &e.resource, sizeof(e.resource));
    h = fnv1a(h, &e.start, sizeof(e.start));
    h = fnv1a(h, &e.finish, sizeof(e.finish));
  }
  return h;
}

/// One task of 50 expected ms on every resource: long enough that a
/// high-rate outage reliably interrupts it.
rd::TaskGraph one_long_task() {
  rd::TaskGraph g("single", {"K"});
  g.add_task(0);
  return g;
}

rs::CostModel flat_costs() { return rs::CostModel("flat", {{50.0, 50.0}}); }

/// Greedy lockstep driver: first ready task onto first idle resource.
/// Deterministic, so two engines that should be bit-exact produce the
/// same trace through it.
template <typename Engine>
rs::Trace run_greedy(Engine&& engine) {
  while (!engine.finished()) {
    for (;;) {
      const auto idle = engine.idle_resources();
      if (idle.empty() || engine.ready().empty()) break;
      engine.start(engine.ready().front(), idle.front());
    }
    if (engine.finished()) break;
    EXPECT_TRUE(engine.advance());
  }
  return engine.trace();
}

}  // namespace

// --- bit-exactness pin -----------------------------------------------

TEST(FaultModel, NoneIsBitExactWithFaultFreeConstructor) {
  const auto graph = rd::cholesky_graph(6);
  const auto costs = rs::CostModel::cholesky();
  const auto platform = rs::Platform::hybrid(2, 2);
  for (const double sigma : {0.0, 0.3}) {
    for (const std::uint64_t seed : {1ULL, 7ULL, 99ULL}) {
      rs::SimEngine plain(graph, platform, costs, sigma, seed);
      rs::SimEngine with_none(graph, platform, costs,
                              rs::FaultModel::none(), sigma, seed);
      EXPECT_FALSE(with_none.fault_enabled());
      const auto h1 = trace_hash(run_greedy(plain));
      const auto h2 = trace_hash(run_greedy(with_none));
      EXPECT_EQ(h1, h2) << "sigma=" << sigma << " seed=" << seed;
    }
  }
}

TEST(FaultModel, NoneIsBitExactThroughSimulator) {
  const auto graph = rd::lu_graph(5);
  const auto costs = rs::CostModel::lu();
  const auto platform = rs::Platform::cpus(3);
  rs::Simulator::Options base;
  base.sigma = 0.2;
  base.seed = 5;
  rs::Simulator::Options with_none = base;
  with_none.faults = rs::FaultModel::none();
  for (const char* name : {"heft", "mct", "greedy"}) {
    std::unique_ptr<rs::Scheduler> a, b;
    if (std::string(name) == "heft") {
      a = std::make_unique<rx::HeftScheduler>();
      b = std::make_unique<rx::HeftScheduler>();
    } else if (std::string(name) == "mct") {
      a = std::make_unique<rx::MctScheduler>();
      b = std::make_unique<rx::MctScheduler>();
    } else {
      a = std::make_unique<rx::GreedyEftScheduler>();
      b = std::make_unique<rx::GreedyEftScheduler>();
    }
    rs::Simulator s1(graph, platform, costs, base);
    rs::Simulator s2(graph, platform, costs, with_none);
    EXPECT_EQ(trace_hash(s1.run(*a).trace), trace_hash(s2.run(*b).trace))
        << name;
  }
}

// --- model validation -------------------------------------------------

TEST(FaultModel, ValidateRejectsNonsense) {
  const auto bad = [](auto mutate) {
    rs::FaultModel m;
    mutate(m);
    return m;
  };
  EXPECT_THROW(bad([](rs::FaultModel& m) { m.outage_rate = -1.0; }).validate(),
               std::invalid_argument);
  EXPECT_THROW(
      bad([](rs::FaultModel& m) { m.slowdown_rate = -0.1; }).validate(),
      std::invalid_argument);
  EXPECT_THROW(
      bad([](rs::FaultModel& m) { m.task_failure_prob = 1.5; }).validate(),
      std::invalid_argument);
  EXPECT_THROW(
      bad([](rs::FaultModel& m) { m.task_failure_prob = -0.1; }).validate(),
      std::invalid_argument);
  EXPECT_THROW(
      bad([](rs::FaultModel& m) { m.slowdown_rate = 1.0; }).validate(),
      std::invalid_argument);  // slowdowns without a mean duration
  EXPECT_THROW(
      bad([](rs::FaultModel& m) { m.slowdown_factor = 0.5; }).validate(),
      std::invalid_argument);
  EXPECT_THROW(
      bad([](rs::FaultModel& m) { m.min_survivors_per_type = -1; }).validate(),
      std::invalid_argument);
  EXPECT_NO_THROW(rs::FaultModel::none().validate());
  EXPECT_FALSE(rs::FaultModel::none().enabled());

  ru::Rng rng(1);
  EXPECT_GT(rs::FaultModel::sample_gap(2.0, rng), 0.0);
  EXPECT_GT(rs::FaultModel::sample_duration(5.0, rng), 0.0);
  EXPECT_THROW(rs::FaultModel::sample_gap(0.0, rng), std::invalid_argument);
  EXPECT_THROW(rs::FaultModel::sample_duration(-1.0, rng),
               std::invalid_argument);

  rs::FaultModel invalid;
  invalid.outage_rate = -1.0;
  EXPECT_THROW(rs::SimEngine(rd::cholesky_graph(2), rs::Platform::cpus(2),
                             rs::CostModel::cholesky(), invalid, 0.0, 1),
               std::invalid_argument);
}

// --- outage semantics -------------------------------------------------

TEST(FaultModel, OutageKillsRunningTaskAndItReenters) {
  const auto graph = one_long_task();
  const auto costs = flat_costs();
  rs::FaultModel faults;
  faults.outage_rate = 1.0;    // expected first arrival ~1 ms << 50 ms task
  faults.mean_downtime = 5.0;  // recoverable
  rs::SimEngine engine(graph, rs::Platform::cpus(2), costs, faults, 0.0, 3);
  ASSERT_TRUE(engine.fault_enabled());
  ASSERT_EQ(engine.ready_log().size(), 1);

  engine.start(0, 0);
  while (engine.num_lost_executions() == 0 && !engine.finished()) {
    ASSERT_TRUE(engine.advance());
  }
  // The execution was lost, not completed.
  ASSERT_FALSE(engine.finished());
  EXPECT_GE(engine.num_outages(), 1);
  EXPECT_EQ(engine.num_lost_executions(), 1);
  EXPECT_FALSE(engine.any_running());
  // The task is ready again and logged a second time.
  EXPECT_TRUE(engine.is_ready(0));
  EXPECT_EQ(engine.ready_log().size(), 2);
  EXPECT_EQ(engine.ready_log()[1], 0);
  // Its resource is down: not idle, infinite availability, start refused.
  EXPECT_FALSE(engine.is_up(0));
  EXPECT_EQ(engine.num_up(), 1);
  EXPECT_FALSE(engine.is_idle(0));
  EXPECT_EQ(engine.expected_available_at(0),
            std::numeric_limits<double>::infinity());
  EXPECT_THROW(engine.start(0, 0), std::logic_error);

  // Finish greedily; the trace must still be a valid schedule with the
  // task appearing exactly once (only the successful execution counts).
  const auto trace = run_greedy(engine);
  EXPECT_TRUE(engine.finished());
  EXPECT_EQ(trace.size(), 1);
  EXPECT_EQ(trace.validate(graph, rs::Platform::cpus(2)), "");
  EXPECT_GE(engine.num_recoveries(), 0);
}

TEST(FaultModel, SurvivorGuardKeepsOneResourcePerType) {
  // Permanent outages at a rate that would take everything down; the
  // default guard must keep >= 1 CPU and >= 1 GPU alive forever.
  const auto graph = rd::cholesky_graph(4);
  rs::FaultModel faults;
  faults.outage_rate = 0.05;
  faults.mean_downtime = 0.0;  // permanent
  rs::SimEngine engine(graph, rs::Platform::hybrid(2, 2),
                       rs::CostModel::cholesky(), faults, 0.0, 11);
  const auto trace = run_greedy(engine);
  EXPECT_TRUE(engine.finished());
  EXPECT_GE(engine.num_up(), 2);
  EXPECT_TRUE(engine.is_up(0) || engine.is_up(1));  // a CPU survives
  EXPECT_TRUE(engine.is_up(2) || engine.is_up(3));  // a GPU survives
  EXPECT_EQ(trace.validate(graph, rs::Platform::hybrid(2, 2)), "");
}

// --- slowdown semantics -----------------------------------------------

TEST(FaultModel, SlowdownScalesExpectedDuration) {
  const auto graph = one_long_task();
  const auto costs = flat_costs();
  rs::FaultModel faults;
  faults.slowdown_rate = 0.5;
  faults.mean_slowdown = 20.0;
  faults.slowdown_factor = 3.0;
  rs::SimEngine engine(graph, rs::Platform::cpus(2), costs, faults, 0.0, 5);
  // Advance until some resource enters a degraded window (slowdown edges
  // are observable events, so advance() returns at each one).
  rs::ResourceId degraded = -1;
  for (int i = 0; i < 64 && degraded < 0; ++i) {
    ASSERT_TRUE(engine.advance());
    for (rs::ResourceId r = 0; r < 2; ++r) {
      if (engine.speed_factor(r) == 3.0) degraded = r;
    }
  }
  ASSERT_GE(degraded, 0) << "no slowdown window within 64 events";
  EXPECT_DOUBLE_EQ(engine.expected_duration(0, degraded), 150.0);
  // Slowdowns degrade but never take a resource down.
  EXPECT_TRUE(engine.is_up(degraded));
  EXPECT_TRUE(engine.is_idle(degraded));
  EXPECT_EQ(engine.num_up(), 2);
}

// --- task-failure semantics -------------------------------------------

TEST(FaultModel, TaskFailuresForceReexecution) {
  const auto graph = rd::cholesky_graph(4);
  const auto platform = rs::Platform::hybrid(2, 2);
  rs::FaultModel faults;
  faults.task_failure_prob = 0.3;
  rs::SimEngine engine(graph, platform, rs::CostModel::cholesky(), faults,
                       0.0, 17);
  const auto trace = run_greedy(engine);
  EXPECT_TRUE(engine.finished());
  // With p = 0.3 over 20 tasks, at least one failure is near-certain
  // (and deterministic for this seed).
  EXPECT_GT(engine.num_lost_executions(), 0);
  EXPECT_EQ(engine.num_outages(), 0);  // failures never down the resource
  EXPECT_EQ(engine.num_up(), 4);
  // Every completion in the trace respects precedence even though some
  // predecessors executed more than once.
  EXPECT_EQ(trace.size(), graph.num_tasks());
  EXPECT_EQ(trace.validate(graph, platform), "");
}

// --- scheduler graceful degradation -----------------------------------

TEST(FaultSchedulers, EveryDagCompletesUnderRandomOutages) {
  // Property: with the survivor guard at its default (>= 1 resource of
  // each type stays up), every scheduler finishes every DAG under
  // random recoverable AND permanent outage schedules, and the trace is
  // a valid schedule.
  struct Instance {
    rd::TaskGraph graph;
    rs::CostModel costs;
    rs::Platform platform;
  };
  const Instance instances[] = {
      {rd::cholesky_graph(5), rs::CostModel::cholesky(),
       rs::Platform::hybrid(2, 2)},
      {rd::lu_graph(4), rs::CostModel::lu(), rs::Platform::cpus(3)},
  };
  const auto factories = [] {
    std::vector<std::unique_ptr<rs::Scheduler>> v;
    v.push_back(std::make_unique<rx::HeftScheduler>());
    v.push_back(std::make_unique<rx::MctScheduler>());
    v.push_back(std::make_unique<rx::GreedyEftScheduler>());
    return v;
  };
  for (const auto& inst : instances) {
    for (const bool permanent : {false, true}) {
      for (std::uint64_t seed = 0; seed < 6; ++seed) {
        rs::FaultModel faults;
        faults.outage_rate = permanent ? 0.003 : 0.01;
        faults.mean_downtime = permanent ? 0.0 : 80.0;
        faults.task_failure_prob = 0.05;
        rs::Simulator::Options options;
        options.sigma = 0.2;
        options.seed = 1000 + seed;
        options.faults = faults;
        for (auto& scheduler : factories()) {
          rs::Simulator sim(inst.graph, inst.platform, inst.costs, options);
          const auto result = sim.run(*scheduler);
          EXPECT_TRUE(std::isfinite(result.makespan))
              << scheduler->name() << " " << inst.graph.name();
          EXPECT_EQ(result.trace.validate(inst.graph, inst.platform), "")
              << scheduler->name() << " seed=" << seed
              << " permanent=" << permanent;
        }
      }
    }
  }
}

TEST(FaultSchedulers, FaultsDegradeButDoNotExplodeMakespan) {
  // Sanity on the metric the fault_sweep bench reports: injected
  // outages make every scheduler slower, not faster, and recoverable
  // outages keep the slowdown bounded.
  const auto graph = rd::cholesky_graph(6);
  const auto costs = rs::CostModel::cholesky();
  const auto platform = rs::Platform::hybrid(2, 2);
  rx::MctScheduler sched;
  rs::Simulator::Options clean;
  clean.sigma = 0.0;
  clean.seed = 21;
  const double base = rs::Simulator(graph, platform, costs, clean)
                          .run(sched)
                          .makespan;
  rs::FaultModel faults;
  faults.outage_rate = 0.005;
  faults.mean_downtime = 100.0;
  rs::Simulator::Options faulty = clean;
  faulty.faults = faults;
  const double hurt = rs::Simulator(graph, platform, costs, faulty)
                          .run(sched)
                          .makespan;
  EXPECT_GE(hurt, base);
  EXPECT_LT(hurt, base * 20.0);
}

TEST(FaultSchedulers, UnrecoverablePlatformThrows) {
  // Guard disabled + permanent outages at a huge rate: everything dies
  // with tasks remaining. The simulator must fail loudly, not spin.
  const auto graph = one_long_task();
  rs::FaultModel faults;
  faults.outage_rate = 50.0;
  faults.mean_downtime = 0.0;
  faults.min_survivors_per_type = 0;
  rs::Simulator::Options options;
  options.seed = 2;
  options.faults = faults;
  rx::MctScheduler sched;
  rs::Simulator sim(graph, rs::Platform::cpus(2), flat_costs(), options);
  EXPECT_THROW(sim.run(sched), std::logic_error);
}
