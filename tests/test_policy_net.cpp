#include <gtest/gtest.h>

#include "dag/cholesky.hpp"
#include "rl/policy_net.hpp"
#include "tensor/ops.hpp"

namespace rd = readys::dag;
namespace rs = readys::sim;
namespace rr = readys::rl;
namespace rt = readys::tensor;

namespace {

rr::Observation make_observation(bool allow_idle, int w = 2) {
  static const rd::TaskGraph graph = rd::cholesky_graph(4);
  static const rs::Platform platform = rs::Platform::hybrid(2, 2);
  static const rs::CostModel costs = rs::CostModel::cholesky();
  rs::SimEngine engine(graph, platform, costs, 0.0, 1);
  if (allow_idle) {
    // Start the source so a task is running, then advance to get 3 ready
    // TRSMs with something running.
    engine.start(graph.sources().front(), 0);
    engine.advance();
    engine.start(engine.ready().front(), 1);
  }
  rr::StateEncoder enc(graph, costs, w);
  return enc.encode(engine, 3);
}

rr::AgentConfig small_config() {
  rr::AgentConfig cfg;
  cfg.hidden = 16;
  cfg.gcn_layers = 2;
  cfg.seed = 11;
  return cfg;
}

}  // namespace

TEST(PolicyNet, OutputShapesWithoutIdle) {
  const auto obs = make_observation(false);
  rr::PolicyNet net(rr::StateEncoder::node_feature_width(4), 8, small_config());
  const auto out = net.forward(obs);
  EXPECT_EQ(out.probs.cols(), obs.ready_tasks.size());
  EXPECT_EQ(out.log_probs.cols(), obs.ready_tasks.size());
  EXPECT_EQ(out.value.value().size(), 1u);
}

TEST(PolicyNet, OutputShapesWithIdle) {
  const auto obs = make_observation(true);
  ASSERT_TRUE(obs.allow_idle);
  rr::PolicyNet net(rr::StateEncoder::node_feature_width(4), 8, small_config());
  const auto out = net.forward(obs);
  EXPECT_EQ(out.probs.cols(), obs.ready_tasks.size() + 1);
}

TEST(PolicyNet, ProbabilitiesAreADistribution) {
  const auto obs = make_observation(true);
  rr::PolicyNet net(rr::StateEncoder::node_feature_width(4), 8, small_config());
  const auto p = net.forward(obs).probs.value();
  double sum = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    EXPECT_GT(p[i], 0.0);
    sum += p[i];
  }
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(PolicyNet, DeterministicGivenSeed) {
  const auto obs = make_observation(true);
  rr::PolicyNet a(rr::StateEncoder::node_feature_width(4), 8, small_config());
  rr::PolicyNet b(rr::StateEncoder::node_feature_width(4), 8, small_config());
  EXPECT_TRUE(a.forward(obs).probs.value() == b.forward(obs).probs.value());
}

TEST(PolicyNet, DifferentSeedsDiffer) {
  const auto obs = make_observation(true);
  auto cfg2 = small_config();
  cfg2.seed = 99;
  rr::PolicyNet a(rr::StateEncoder::node_feature_width(4), 8, small_config());
  rr::PolicyNet b(rr::StateEncoder::node_feature_width(4), 8, cfg2);
  EXPECT_FALSE(a.forward(obs).probs.value() ==
               b.forward(obs).probs.value());
}

TEST(PolicyNet, GradientsReachEveryParameter) {
  const auto obs = make_observation(true);
  rr::PolicyNet net(rr::StateEncoder::node_feature_width(4), 8, small_config());
  const auto out = net.forward(obs);
  // Loss touching the policy, the value and the entropy heads.
  rt::Var loss = rt::add(
      rt::pick(out.log_probs, 0, 0),
      rt::add(rt::square(out.value), rt::entropy_row(out.probs)));
  loss.backward();
  for (const auto& [name, p] : net.named_parameters()) {
    EXPECT_GT(p.grad().abs_max(), 0.0) << name;
  }
}

TEST(PolicyNet, RejectsEmptyReadySet) {
  auto obs = make_observation(false);
  obs.ready_tasks.clear();
  obs.ready_positions.clear();
  rr::PolicyNet net(rr::StateEncoder::node_feature_width(4), 8, small_config());
  EXPECT_THROW(net.forward(obs), std::invalid_argument);
}

TEST(PolicyNet, RequiresAtLeastOneGcnLayer) {
  auto cfg = small_config();
  cfg.gcn_layers = 0;
  EXPECT_THROW(rr::PolicyNet(rr::StateEncoder::node_feature_width(4), 8, cfg), std::invalid_argument);
}

TEST(PolicyNet, ParameterCountScalesWithConfig) {
  auto cfg = small_config();
  rr::PolicyNet small(rr::StateEncoder::node_feature_width(4), 8, cfg);
  cfg.hidden = 32;
  rr::PolicyNet big(rr::StateEncoder::node_feature_width(4), 8, cfg);
  EXPECT_GT(big.parameter_count(), small.parameter_count());
  EXPECT_EQ(small.num_gcn_layers(), 2);
}
