// Hot weight reload suite: PolicyStore validation gate (no-op detection,
// NaN / truncated / legacy-v1 candidate rejection with rollback to
// last-good), DecisionService reload edges (rejected while draining,
// bit-identical decisions after a rejected reload, per-decision weight
// version recording), and the one-snapshot-per-version sharing pin that
// closes the inference-backend follow-up.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "core/readys.hpp"
#include "nn/serialize.hpp"
#include "rl/checkpoint.hpp"

namespace rc = readys::core;
namespace rr = readys::rl;
namespace rv = readys::serve;

namespace {

rr::AgentConfig small_agent(std::uint64_t seed = 3) {
  rr::AgentConfig cfg;
  cfg.hidden = 8;
  cfg.gcn_layers = 1;
  cfg.window = 1;
  cfg.seed = seed;
  return cfg;
}

rr::PolicyNet small_net(const rr::AgentConfig& cfg) {
  return rr::PolicyNet(rr::StateEncoder::node_feature_width(4),
                       rr::StateEncoder::kResourceFeatureWidth, cfg);
}

rv::PolicyStoreConfig fast_probe() {
  rv::PolicyStoreConfig cfg;
  cfg.probe_tiles = 3;
  cfg.probe_cpus = 2;
  cfg.probe_gpus = 2;
  // The 3-tile probe keeps the gate fast, but its golden MCT is so
  // small that the production 10x bound can trip on a random-init net.
  // Rejection paths under test here (NaN, architecture, parse) don't
  // ride the makespan bound, so widen it for valid-weight publishes.
  cfg.max_makespan_factor = 30.0;
  return cfg;
}

rv::SessionSpec spec_for(rc::App app, int tiles, std::uint64_t seed) {
  rv::SessionSpec s;
  s.app = app;
  s.tiles = tiles;
  s.seed = seed;
  s.deadline_us = -1.0;
  return s;
}

void pump_dry(rv::DecisionService& svc) {
  for (int guard = 0; guard < 100000; ++guard) {
    if (svc.pump() == 0 && svc.queue_depth() == 0) return;
  }
  FAIL() << "service did not drain in 100k rounds";
}

/// Writes `blob` to a fresh temp file and returns its path.
std::string write_temp(const std::string& name, const std::string& blob) {
  const std::string path =
      ::testing::TempDir() + "readys_reload_" + name + ".txt";
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << blob;
  return path;
}

std::string checkpoint_blob(const rr::PolicyNet& net) {
  rr::CheckpointData data;
  data.trainer = "a2c";
  return rr::serialize_checkpoint(net, data);
}

}  // namespace

TEST(PolicyStore, PublishesConstructionWeightsAsVersionOne) {
  const auto agent = small_agent();
  const auto net = small_net(agent);
  rv::PolicyStore store(net, agent, fast_probe());
  EXPECT_EQ(store.active_version(), 1u);
  const auto snap = store.current();
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->version, 1u);
  ASSERT_NE(snap->net, nullptr);
  ASSERT_NE(snap->f32, nullptr);
}

TEST(PolicyStore, IdenticalWeightsReloadIsNoOp) {
  const auto agent = small_agent();
  const auto net = small_net(agent);
  rv::PolicyStore store(net, agent, fast_probe());
  const rv::ReloadResult r = store.reload_from_net(net);
  EXPECT_EQ(r.status, rv::ReloadStatus::kNoOp);
  EXPECT_EQ(r.version, 1u);
  EXPECT_NE(r.reason.find("identical"), std::string::npos);
  EXPECT_EQ(store.active_version(), 1u);
  EXPECT_EQ(store.counters().noops, 1u);
  EXPECT_EQ(store.counters().published, 0u);
}

TEST(PolicyStore, ForceRepublishesIdenticalWeightsAsNewVersion) {
  const auto agent = small_agent();
  const auto net = small_net(agent);
  rv::PolicyStore store(net, agent, fast_probe());
  const rv::ReloadResult r = store.reload_from_net(net, /*force=*/true);
  EXPECT_EQ(r.status, rv::ReloadStatus::kPublished);
  EXPECT_EQ(r.version, 2u);
  EXPECT_EQ(store.active_version(), 2u);
}

TEST(PolicyStore, DifferentValidWeightsPublish) {
  const auto agent = small_agent(3);
  const auto net = small_net(agent);
  rv::PolicyStore store(net, agent, fast_probe());
  const auto other = small_net(small_agent(99));  // same arch, new init
  const rv::ReloadResult r = store.reload_from_net(other);
  EXPECT_EQ(r.status, rv::ReloadStatus::kPublished);
  EXPECT_EQ(r.version, 2u);
  EXPECT_EQ(store.counters().published, 1u);
}

TEST(PolicyStore, NanCandidateIsRejectedAndLastGoodStaysActive) {
  const auto agent = small_agent();
  const auto net = small_net(agent);
  rv::PolicyStore store(net, agent, fast_probe());
  const auto before = store.current();

  auto poisoned = small_net(agent);
  poisoned.parameters()[0].mutable_value().data()[0] =
      std::numeric_limits<double>::quiet_NaN();
  const rv::ReloadResult r = store.reload_from_net(poisoned);
  EXPECT_EQ(r.status, rv::ReloadStatus::kRejected);
  EXPECT_EQ(r.version, 1u);
  EXPECT_NE(r.reason.find("non-finite"), std::string::npos) << r.reason;
  EXPECT_EQ(store.counters().rejected, 1u);
  // Rollback semantics: the active snapshot is the same object.
  EXPECT_EQ(store.current(), before);
  EXPECT_EQ(store.last_reject_reason(), r.reason);
}

TEST(PolicyStore, ArchitectureMismatchIsRejected) {
  const auto agent = small_agent();
  const auto net = small_net(agent);
  rv::PolicyStore store(net, agent, fast_probe());
  auto bigger = small_agent();
  bigger.hidden = 16;
  const auto wrong = small_net(bigger);
  const rv::ReloadResult r = store.reload_from_net(wrong);
  EXPECT_EQ(r.status, rv::ReloadStatus::kRejected);
  EXPECT_NE(r.reason.find("architecture mismatch"), std::string::npos)
      << r.reason;
  EXPECT_EQ(store.active_version(), 1u);
}

TEST(PolicyStore, ReloadFromCheckpointFilePublishes) {
  const auto agent = small_agent();
  const auto net = small_net(agent);
  rv::PolicyStore store(net, agent, fast_probe());
  const auto other = small_net(small_agent(1234));
  const std::string path = write_temp("good", checkpoint_blob(other));
  const rv::ReloadResult r = store.reload_from_file(path);
  EXPECT_EQ(r.status, rv::ReloadStatus::kPublished);
  EXPECT_EQ(r.version, 2u);
  std::remove(path.c_str());
}

TEST(PolicyStore, TruncatedCheckpointRejectsWithRollback) {
  const auto agent = small_agent();
  const auto net = small_net(agent);
  rv::PolicyStore store(net, agent, fast_probe());
  const std::string blob = checkpoint_blob(small_net(small_agent(1234)));
  const std::string path =
      write_temp("truncated", blob.substr(0, blob.size() / 2));
  const rv::ReloadResult r = store.reload_from_file(path);
  EXPECT_EQ(r.status, rv::ReloadStatus::kRejected);
  EXPECT_NE(r.reason.find("failed to parse"), std::string::npos) << r.reason;
  EXPECT_EQ(store.active_version(), 1u);
  std::remove(path.c_str());
}

TEST(PolicyStore, LegacyV1CheckpointRejectsWithTypedReason) {
  const auto agent = small_agent();
  const auto net = small_net(agent);
  rv::PolicyStore store(net, agent, fast_probe());
  const std::string path = write_temp(
      "v1", "readys-checkpoint v1\nepisode 5\nweights 0\n");
  const rv::ReloadResult r = store.reload_from_file(path);
  EXPECT_EQ(r.status, rv::ReloadStatus::kRejected);
  EXPECT_NE(r.reason.find("legacy v1"), std::string::npos) << r.reason;
  EXPECT_NE(r.reason.find("readys-ckpt/2"), std::string::npos) << r.reason;
  EXPECT_EQ(store.active_version(), 1u);
  std::remove(path.c_str());
}

TEST(PolicyStore, MissingFileRejects) {
  const auto agent = small_agent();
  const auto net = small_net(agent);
  rv::PolicyStore store(net, agent, fast_probe());
  const rv::ReloadResult r =
      store.reload_from_file("/nonexistent/readys.ckpt");
  EXPECT_EQ(r.status, rv::ReloadStatus::kRejected);
  EXPECT_NE(r.reason.find("cannot read"), std::string::npos) << r.reason;
}

TEST(ServeReload, RejectedWhileDraining) {
  const auto agent = small_agent();
  const auto net = small_net(agent);
  rv::ServiceConfig sc;
  sc.workers = 0;
  rv::DecisionService svc(net, agent, sc);
  svc.drain();
  const rv::ReloadResult r = svc.reload(net, /*force=*/true);
  EXPECT_EQ(r.status, rv::ReloadStatus::kRejected);
  EXPECT_NE(r.reason.find("draining"), std::string::npos) << r.reason;
  EXPECT_EQ(svc.counters().reload_rejects, 1u);
  EXPECT_EQ(svc.active_weight_version(), 1u);
}

TEST(ServeReload, RejectedReloadKeepsDecisionsBitIdentical) {
  const auto agent = small_agent();
  const auto net = small_net(agent);
  auto poisoned = small_net(agent);
  poisoned.parameters()[0].mutable_value().data()[0] =
      std::numeric_limits<double>::quiet_NaN();

  // Sampling mode so any probability drift would change the trace.
  auto run = [&](bool attempt_reload) {
    rv::ServiceConfig sc;
    sc.workers = 0;
    sc.record_actions = true;
    sc.greedy = false;
    rv::DecisionService svc(net, agent, sc);
    for (std::uint64_t s = 1; s <= 3; ++s) {
      svc.submit(spec_for(rc::App::kCholesky, 3, s));
    }
    for (int round = 0; round < 4; ++round) svc.pump();
    if (attempt_reload) {
      const rv::ReloadResult r = svc.reload(poisoned);
      EXPECT_EQ(r.status, rv::ReloadStatus::kRejected);
    }
    pump_dry(svc);
    svc.shutdown();
    return svc.results();
  };

  const auto baseline = run(false);
  const auto with_reject = run(true);
  ASSERT_EQ(baseline.size(), with_reject.size());
  for (std::size_t i = 0; i < baseline.size(); ++i) {
    EXPECT_EQ(baseline[i].actions, with_reject[i].actions)
        << "trace diverged for session " << i;
    // Every decision on both sides ran against version 1.
    for (const std::uint64_t v : with_reject[i].weight_versions) {
      EXPECT_EQ(v, 1u);
    }
  }
}

TEST(ServeReload, PublishedReloadShowsUpInWeightVersions) {
  const auto agent = small_agent();
  const auto net = small_net(agent);
  rv::ServiceConfig sc;
  sc.workers = 0;
  sc.record_actions = true;
  rv::DecisionService svc(net, agent, sc);
  svc.submit(spec_for(rc::App::kCholesky, 4, 7));
  for (int round = 0; round < 5; ++round) svc.pump();
  const rv::ReloadResult r = svc.reload(net, /*force=*/true);
  ASSERT_EQ(r.status, rv::ReloadStatus::kPublished);
  EXPECT_EQ(r.version, 2u);
  EXPECT_EQ(svc.counters().reloads, 1u);
  pump_dry(svc);
  svc.shutdown();

  const auto results = svc.results();
  ASSERT_EQ(results.size(), 1u);
  const auto& versions = results[0].weight_versions;
  ASSERT_EQ(versions.size(), results[0].actions.size());
  // Monotone, starts at 1, ends at 2: the swap happened exactly once at
  // a round boundary and every decision names the version it ran on.
  EXPECT_EQ(versions.front(), 1u);
  EXPECT_EQ(versions.back(), 2u);
  for (std::size_t i = 1; i < versions.size(); ++i) {
    EXPECT_LE(versions[i - 1], versions[i]);
  }
}

TEST(ServeReload, OneSnapshotBuildPerVersionAcrossWorkers) {
  const auto agent = small_agent();
  const auto net = small_net(agent);
  rv::ServiceConfig sc;
  sc.workers = 4;
  sc.inference_backend = rr::InferenceBackendKind::kF32Simd;
  const std::uint64_t before = rr::InferenceWeights::snapshot_builds();
  rv::DecisionService svc(net, agent, sc);
  for (std::uint64_t s = 1; s <= 8; ++s) {
    svc.submit(spec_for(rc::App::kCholesky, 3, s));
  }
  svc.drain();
  svc.wait_idle();
  const rv::ReloadResult r = svc.reload(net, /*force=*/true);
  // Reload after drain is rejected — the snapshot count must not move.
  EXPECT_EQ(r.status, rv::ReloadStatus::kRejected);
  svc.shutdown();
  // Exactly one f32 snapshot was built (version 1 at construction),
  // shared by all 4 workers; adopting never re-snapshots.
  EXPECT_EQ(rr::InferenceWeights::snapshot_builds() - before, 1u);
}

TEST(ServeReload, ReloadUnderWorkerLoadCompletesEverySession) {
  const auto agent = small_agent();
  const auto net = small_net(agent);
  rv::ServiceConfig sc;
  sc.workers = 2;
  sc.record_actions = true;
  rv::DecisionService svc(net, agent, sc);
  std::uint64_t published = 0;
  for (std::uint64_t s = 1; s <= 12; ++s) {
    svc.submit(spec_for(rc::App::kCholesky, 3, s));
    const rv::ReloadResult r = svc.reload(net, /*force=*/true);
    if (r.status == rv::ReloadStatus::kPublished) ++published;
  }
  svc.drain();
  svc.wait_idle();
  svc.shutdown();
  EXPECT_EQ(published, 12u);
  EXPECT_EQ(svc.counters().completed, 12u);
  // Every decision names exactly one published version, monotone per
  // session (workers adopt at round boundaries, never mid-round).
  for (const auto& res : svc.results()) {
    ASSERT_EQ(res.weight_versions.size(), res.actions.size());
    for (std::size_t i = 1; i < res.weight_versions.size(); ++i) {
      EXPECT_LE(res.weight_versions[i - 1], res.weight_versions[i]);
    }
    if (!res.weight_versions.empty()) {
      EXPECT_GE(res.weight_versions.front(), 1u);
      EXPECT_LE(res.weight_versions.back(), 13u);
    }
  }
}
