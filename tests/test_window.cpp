#include <gtest/gtest.h>

#include <algorithm>

#include "dag/cholesky.hpp"
#include "dag/window.hpp"

namespace rd = readys::dag;

namespace {

/// 0 -> 1 -> 2 -> 3 -> 4 chain.
rd::TaskGraph chain(int n) {
  rd::TaskGraph g("chain", {"A"});
  for (int i = 0; i < n; ++i) g.add_task(0);
  for (rd::TaskId i = 0; i + 1 < g.num_tasks(); ++i) g.add_edge(i, i + 1);
  return g;
}

}  // namespace

TEST(Window, DepthZeroKeepsOnlySeeds) {
  const auto g = chain(5);
  const auto w = rd::extract_window(g, {0}, 0);
  ASSERT_EQ(w.size(), 1u);
  EXPECT_EQ(w.nodes[0], 0u);
  EXPECT_TRUE(w.edges.empty());
}

TEST(Window, DepthLimitsBfs) {
  const auto g = chain(5);
  for (int depth = 0; depth <= 4; ++depth) {
    const auto w = rd::extract_window(g, {0}, depth);
    EXPECT_EQ(w.size(), static_cast<std::size_t>(depth + 1));
    // Edges of a chain restricted to the window: depth of them.
    EXPECT_EQ(w.edges.size(), static_cast<std::size_t>(depth));
  }
}

TEST(Window, SeedsComeFirstWithDepthZero) {
  const auto g = chain(5);
  const auto w = rd::extract_window(g, {2, 0}, 2);
  ASSERT_GE(w.size(), 2u);
  EXPECT_EQ(w.nodes[0], 2u);
  EXPECT_EQ(w.nodes[1], 0u);
  EXPECT_EQ(w.depth[0], 0);
  EXPECT_EQ(w.depth[1], 0);
}

TEST(Window, DuplicateReachableNodeKeptOnce) {
  const auto g = chain(4);
  // Seeds 0 and 1: node 1 is both a seed and a successor of 0.
  const auto w = rd::extract_window(g, {0, 1}, 3);
  std::vector<rd::TaskId> nodes = w.nodes;
  std::sort(nodes.begin(), nodes.end());
  EXPECT_TRUE(std::adjacent_find(nodes.begin(), nodes.end()) == nodes.end());
  EXPECT_EQ(w.size(), 4u);
  // Seed status wins: depth of node 1 is 0, not 1.
  EXPECT_EQ(w.depth[w.position_of(1)], 0);
}

TEST(Window, InducedEdgesOnly) {
  const auto g = rd::cholesky_graph(4);
  const auto w = rd::extract_window(g, {g.sources().front()}, 1);
  for (const auto& [u, v] : w.edges) {
    ASSERT_LT(u, w.size());
    ASSERT_LT(v, w.size());
    EXPECT_TRUE(g.has_edge(w.nodes[u], w.nodes[v]));
  }
}

TEST(Window, FullDepthCoversReachableSet) {
  const auto g = rd::cholesky_graph(4);
  const auto src = g.sources().front();
  const auto w =
      rd::extract_window(g, {src}, static_cast<int>(g.num_tasks()));
  // Everything is reachable from the single source.
  EXPECT_EQ(w.size(), g.num_tasks());
  EXPECT_EQ(w.edges.size(), g.num_edges());
}

TEST(Window, PositionOfMissingReturnsNpos) {
  const auto g = chain(5);
  const auto w = rd::extract_window(g, {0}, 1);
  EXPECT_EQ(w.position_of(4), rd::Window::npos);
  EXPECT_EQ(w.position_of(0), 0u);
}

TEST(Window, DepthValuesAreShortestDistances) {
  // Diamond with a long route: 0->1->2->3 and 0->3. Depth of 3 must be 1.
  rd::TaskGraph g("d", {"A"});
  for (int i = 0; i < 4; ++i) g.add_task(0);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  g.add_edge(0, 3);
  const auto w = rd::extract_window(g, {0}, 3);
  EXPECT_EQ(w.depth[w.position_of(3)], 1);
}
