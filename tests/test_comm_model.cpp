#include <gtest/gtest.h>

#include "dag/cholesky.hpp"
#include "sched/heft.hpp"
#include "sched/mct.hpp"
#include "sim/comm_model.hpp"
#include "sim/simulator.hpp"

namespace rd = readys::dag;
namespace rs = readys::sim;
namespace rx = readys::sched;

TEST(CommModel, FreeModelIsFree) {
  const auto comm = rs::CommModel::free();
  EXPECT_TRUE(comm.is_free());
  const auto p = rs::Platform::hybrid(1, 1);
  EXPECT_DOUBLE_EQ(comm.transfer_time(p, 0, 1), 0.0);
}

TEST(CommModel, Validation) {
  EXPECT_THROW(rs::CommModel(-1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(rs::CommModel(1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(rs::CommModel(1.0, 1.0, -0.5), std::invalid_argument);
}

TEST(CommModel, DomainRules) {
  const rs::CommModel comm(100.0, 10.0, 1.0);  // 100 B at 10 B/ms + 1 ms
  const auto p = rs::Platform::hybrid(2, 2);   // CPUs 0,1; GPUs 2,3
  EXPECT_DOUBLE_EQ(comm.transfer_time(p, 0, 0), 0.0);   // same resource
  EXPECT_DOUBLE_EQ(comm.transfer_time(p, 0, 1), 0.0);   // CPU -> CPU free
  EXPECT_DOUBLE_EQ(comm.transfer_time(p, 0, 2), 11.0);  // CPU -> GPU
  EXPECT_DOUBLE_EQ(comm.transfer_time(p, 2, 0), 11.0);  // GPU -> CPU
  EXPECT_DOUBLE_EQ(comm.transfer_time(p, 2, 3), 11.0);  // GPU -> GPU
  EXPECT_DOUBLE_EQ(comm.transfer_time(p, 2, 2), 0.0);   // same GPU
}

TEST(CommModel, InputDelaySerializesTransfers) {
  // Diamond: task 3 consumes from tasks 1 (CPU) and 2 (GPU 2).
  rd::TaskGraph g("d", {"A"});
  for (int i = 0; i < 4; ++i) g.add_task(0);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 3);
  g.add_edge(2, 3);
  const rs::CommModel comm(100.0, 10.0, 1.0);
  const auto p = rs::Platform::hybrid(2, 2);
  std::vector<rs::ResourceId> producer{0, 0, 2, -1};
  // Start task 3 on CPU 1: input from task 1 (CPU 0, free) + task 2
  // (GPU 2, 11 ms) = 11 ms.
  EXPECT_DOUBLE_EQ(comm.input_delay(g, 3, p, producer, 1), 11.0);
  // On GPU 3: from CPU 0 (11) + from GPU 2 (11) = 22 ms.
  EXPECT_DOUBLE_EQ(comm.input_delay(g, 3, p, producer, 3), 22.0);
}

TEST(CommEngine, ShippingDelaysDependentTasks) {
  rd::TaskGraph g("chain", {"A"});
  g.add_task(0);
  g.add_task(0);
  g.add_edge(0, 1);
  const auto p = rs::Platform::hybrid(1, 1);
  const auto c = rs::CostModel::uniform(1, 10.0, 10.0);
  const rs::CommModel comm(100.0, 10.0, 0.0);  // 10 ms per cross transfer
  rs::SimEngine e(g, p, c, comm, 0.0, 1);
  EXPECT_TRUE(e.has_comm_model());
  e.start(0, 0);  // CPU
  e.advance();
  EXPECT_DOUBLE_EQ(e.expected_input_delay(1, 0), 0.0);   // stay on CPU
  EXPECT_DOUBLE_EQ(e.expected_input_delay(1, 1), 10.0);  // move to GPU
  e.start(1, 1);
  e.advance();
  EXPECT_DOUBLE_EQ(e.makespan(), 10.0 + 10.0 + 10.0);
}

TEST(CommEngine, FreeCommMatchesPlainEngine) {
  const auto g = rd::cholesky_graph(4);
  const auto p = rs::Platform::hybrid(2, 2);
  const auto c = rs::CostModel::cholesky();
  rx::MctScheduler plain;
  rx::MctScheduler with_free;
  rs::Simulator sim_plain(g, p, c, {0.3, 7});
  rs::Simulator sim_free(g, p, c, {0.3, 7, rs::CommModel::free()});
  EXPECT_DOUBLE_EQ(sim_plain.run(plain).makespan,
                   sim_free.run(with_free).makespan);
}

TEST(CommEngine, ExpensiveCommIncreasesMakespan) {
  const auto g = rd::cholesky_graph(5);
  const auto p = rs::Platform::hybrid(2, 2);
  const auto c = rs::CostModel::cholesky();
  rx::MctScheduler a;
  rx::MctScheduler b;
  rs::Simulator cheap(g, p, c, {0.0, 3});
  rs::Simulator costly(g, p, c, {0.0, 3, rs::CommModel(100.0, 10.0, 2.0)});
  EXPECT_GT(costly.run(b).makespan, cheap.run(a).makespan);
}

TEST(CommEngine, TracesRemainValidUnderComm) {
  const auto g = rd::cholesky_graph(5);
  const auto p = rs::Platform::hybrid(2, 2);
  const auto c = rs::CostModel::cholesky();
  for (bool aware : {false, true}) {
    rx::MctScheduler sched(aware);
    rs::Simulator sim(g, p, c, {0.4, 11, rs::CommModel::pcie_like()});
    const auto result = sim.run(sched);
    EXPECT_EQ(result.trace.validate(g, p), "") << aware;
  }
}

TEST(CommEngine, CommAwareMctNoWorseOnAverage) {
  // With expensive transfers, accounting for them should help (or at
  // least not hurt) MCT across seeds.
  const auto g = rd::cholesky_graph(6);
  const auto p = rs::Platform::hybrid(2, 2);
  const auto c = rs::CostModel::cholesky();
  const rs::CommModel comm(300.0, 10.0, 3.0);  // 33 ms per hop: drastic
  double blind = 0.0;
  double aware = 0.0;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    rx::MctScheduler b(false);
    rx::MctScheduler a(true);
    rs::Simulator s1(g, p, c, {0.2, seed, comm});
    rs::Simulator s2(g, p, c, {0.2, seed, comm});
    blind += s1.run(b).makespan;
    aware += s2.run(a).makespan;
  }
  EXPECT_LE(aware, blind * 1.02);
}

TEST(CommEngine, HeftReplayStillValidWithComm) {
  const auto g = rd::cholesky_graph(5);
  const auto p = rs::Platform::hybrid(2, 2);
  const auto c = rs::CostModel::cholesky();
  rx::HeftScheduler heft;
  rs::Simulator sim(g, p, c, {0.0, 1, rs::CommModel::pcie_like()});
  const auto result = sim.run(heft);
  EXPECT_EQ(result.trace.validate(g, p), "");
  // Comm makes the zero-comm HEFT schedule slower than its estimate.
  EXPECT_GE(result.makespan,
            rx::heft_expected_makespan(g, p, c) - 1e-9);
}
