#include <gtest/gtest.h>

#include "dag/cholesky.hpp"
#include "sim/engine.hpp"

namespace rd = readys::dag;
namespace rs = readys::sim;

namespace {

rd::TaskGraph two_independent() {
  rd::TaskGraph g("pair", {"A"});
  g.add_task(0);
  g.add_task(0);
  return g;
}

}  // namespace

TEST(Platform, FactoriesAndCounts) {
  const auto p = rs::Platform::hybrid(2, 3);
  EXPECT_EQ(p.size(), 5);
  EXPECT_EQ(p.num_cpus(), 2);
  EXPECT_EQ(p.num_gpus(), 3);
  EXPECT_EQ(p.type(0), rs::ResourceType::kCpu);
  EXPECT_EQ(p.type(4), rs::ResourceType::kGpu);
  EXPECT_EQ(p.name(), "2CPU+3GPU");
  EXPECT_EQ(rs::Platform::cpus(4).name(), "4CPU");
  EXPECT_EQ(rs::Platform::gpus(2).name(), "2GPU");
  EXPECT_THROW(rs::Platform({}), std::invalid_argument);
}

TEST(CostModel, LookupAndValidation) {
  const auto c = rs::CostModel::cholesky();
  EXPECT_EQ(c.num_kernels(), 4);
  EXPECT_DOUBLE_EQ(c.expected(rd::kGemm, rs::ResourceType::kCpu), 170.0);
  EXPECT_DOUBLE_EQ(c.expected(rd::kGemm, rs::ResourceType::kGpu), 6.0);
  EXPECT_THROW(c.expected(99, rs::ResourceType::kCpu), std::out_of_range);
  EXPECT_THROW(rs::CostModel("bad", {{1.0}}), std::invalid_argument);
  EXPECT_THROW(rs::CostModel("bad", {{0.0, 1.0}}), std::invalid_argument);
}

TEST(CostModel, UnrelatedAccelerationFactors) {
  // Panel kernels accelerate far less than update kernels — the regime
  // that makes the platforms "unrelated machines".
  for (const auto& c : {rs::CostModel::cholesky(), rs::CostModel::lu(),
                        rs::CostModel::qr()}) {
    const double panel_accel = c.expected(0, rs::ResourceType::kCpu) /
                               c.expected(0, rs::ResourceType::kGpu);
    const double update_accel = c.expected(3, rs::ResourceType::kCpu) /
                                c.expected(3, rs::ResourceType::kGpu);
    EXPECT_LT(panel_accel, 3.0) << c.name();
    EXPECT_GT(update_accel, 15.0) << c.name();
  }
}

TEST(CostModel, MeanOverPlatform) {
  const auto c = rs::CostModel::cholesky();
  const auto p = rs::Platform::hybrid(1, 1);
  EXPECT_DOUBLE_EQ(c.mean_over_platform(rd::kPotrf, p), (30.0 + 15.0) / 2.0);
}

TEST(CostModel, ForGraphDispatch) {
  EXPECT_EQ(rs::CostModel::for_graph(rd::cholesky_graph(2)).name(),
            "cholesky");
  rd::TaskGraph g("mystery", {"A"});
  g.add_task(0);
  EXPECT_THROW(rs::CostModel::for_graph(g), std::invalid_argument);
}

TEST(NoiseModel, DeterministicWhenSigmaZero) {
  rs::NoiseModel noise(0.0);
  readys::util::Rng rng(1);
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(noise.sample(42.0, rng), 42.0);
  }
  EXPECT_THROW(rs::NoiseModel(-0.1), std::invalid_argument);
}

TEST(NoiseModel, NonNegativeAndCentered) {
  rs::NoiseModel noise(0.5);
  readys::util::Rng rng(2);
  double acc = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double d = noise.sample(100.0, rng);
    ASSERT_GE(d, 0.0);
    acc += d;
  }
  // Truncation at 0 biases the mean slightly above E for sigma = 0.5; it
  // must stay within a few percent.
  EXPECT_NEAR(acc / n, 100.0, 5.0);
}

TEST(SimEngine, InitialStateHasSourcesReady) {
  const auto g = rd::cholesky_graph(4);
  const auto p = rs::Platform::cpus(2);
  const auto c = rs::CostModel::cholesky();
  rs::SimEngine e(g, p, c, 0.0, 1);
  EXPECT_EQ(e.now(), 0.0);
  EXPECT_FALSE(e.finished());
  EXPECT_EQ(e.ready().size(), 1u);
  EXPECT_EQ(e.ready().front(), g.sources().front());
  EXPECT_EQ(e.idle_resources().size(), 2u);
}

TEST(SimEngine, StartValidation) {
  const auto g = two_independent();
  const auto p = rs::Platform::cpus(1);
  const auto c = rs::CostModel::uniform(1, 10.0, 5.0);
  rs::SimEngine e(g, p, c, 0.0, 1);
  e.start(0, 0);
  EXPECT_THROW(e.start(1, 0), std::logic_error);   // resource busy
  EXPECT_THROW(e.start(0, 0), std::logic_error);   // not ready anymore
  EXPECT_THROW(e.start(1, 99), std::logic_error);  // bad resource
}

TEST(SimEngine, DeterministicChainExecution) {
  rd::TaskGraph g("chain", {"A"});
  g.add_task(0);
  g.add_task(0);
  g.add_edge(0, 1);
  const auto p = rs::Platform::cpus(1);
  const auto c = rs::CostModel::uniform(1, 10.0, 5.0);
  rs::SimEngine e(g, p, c, 0.0, 1);
  e.start(0, 0);
  EXPECT_TRUE(e.advance());
  EXPECT_DOUBLE_EQ(e.now(), 10.0);
  EXPECT_EQ(e.ready().size(), 1u);
  e.start(1, 0);
  EXPECT_TRUE(e.advance());
  EXPECT_DOUBLE_EQ(e.now(), 20.0);
  EXPECT_TRUE(e.finished());
  EXPECT_DOUBLE_EQ(e.makespan(), 20.0);
  EXPECT_FALSE(e.advance());  // nothing running
}

TEST(SimEngine, SimultaneousCompletionsRetireTogether) {
  const auto g = two_independent();
  const auto p = rs::Platform::cpus(2);
  const auto c = rs::CostModel::uniform(1, 10.0, 5.0);
  rs::SimEngine e(g, p, c, 0.0, 1);
  e.start(0, 0);
  e.start(1, 1);
  EXPECT_TRUE(e.advance());
  EXPECT_TRUE(e.finished());
  EXPECT_EQ(e.num_completed(), 2u);
}

TEST(SimEngine, ExpectedAvailability) {
  const auto g = two_independent();
  const auto p = rs::Platform::hybrid(1, 1);
  const auto c = rs::CostModel::uniform(1, 10.0, 4.0);
  rs::SimEngine e(g, p, c, 0.0, 1);
  EXPECT_DOUBLE_EQ(e.expected_available_at(0), 0.0);
  e.start(0, 0);  // CPU, expected 10
  EXPECT_DOUBLE_EQ(e.expected_available_at(0), 10.0);
  EXPECT_DOUBLE_EQ(e.expected_available_at(1), 0.0);
  EXPECT_DOUBLE_EQ(e.expected_duration(1, 1), 4.0);
}

TEST(SimEngine, ResetReproducesNoiseStream) {
  const auto g = two_independent();
  const auto p = rs::Platform::cpus(2);
  const auto c = rs::CostModel::uniform(1, 100.0, 50.0);
  rs::SimEngine e(g, p, c, 0.3, 123);
  e.start(0, 0);
  e.start(1, 1);
  e.advance();
  while (!e.finished()) e.advance();
  const double mk1 = e.makespan();
  e.reset(123);
  e.start(0, 0);
  e.start(1, 1);
  while (!e.finished()) e.advance();
  EXPECT_DOUBLE_EQ(e.makespan(), mk1);
  e.reset(124);
  e.start(0, 0);
  e.start(1, 1);
  while (!e.finished()) e.advance();
  EXPECT_NE(e.makespan(), mk1);
}

TEST(SimEngine, CostModelCoverageChecked) {
  const auto g = rd::cholesky_graph(2);  // 4 kernel types
  const auto p = rs::Platform::cpus(1);
  const auto c = rs::CostModel::uniform(2, 1.0, 1.0);  // only 2 kernels
  EXPECT_THROW(rs::SimEngine(g, p, c, 0.0, 1), std::invalid_argument);
}
