// Finite-difference verification of every differentiable op: the whole
// training pipeline rests on these gradients being exact.

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "tensor/ops.hpp"
#include "util/rng.hpp"

namespace rt = readys::tensor;
using readys::util::Rng;

namespace {

/// Checks d(f)/d(leaf) against central finite differences for every
/// element of every leaf.
void grad_check(const std::function<rt::Var(std::vector<rt::Var>&)>& f,
                std::vector<rt::Var> leaves, double eps = 1e-6,
                double tol = 1e-5) {
  rt::Var out = f(leaves);
  ASSERT_EQ(out.value().size(), 1u) << "grad_check target must be scalar";
  out.backward();
  for (std::size_t l = 0; l < leaves.size(); ++l) {
    const rt::Tensor analytic = leaves[l].grad();
    for (std::size_t i = 0; i < analytic.size(); ++i) {
      const double saved = leaves[l].mutable_value()[i];
      leaves[l].mutable_value()[i] = saved + eps;
      const double fp = f(leaves).value().item();
      leaves[l].mutable_value()[i] = saved - eps;
      const double fm = f(leaves).value().item();
      leaves[l].mutable_value()[i] = saved;
      const double numeric = (fp - fm) / (2.0 * eps);
      EXPECT_NEAR(analytic[i], numeric,
                  tol * std::max(1.0, std::abs(numeric)))
          << "leaf " << l << " element " << i;
    }
  }
}

rt::Var leaf(std::size_t r, std::size_t c, Rng& rng) {
  return rt::Var(rt::Tensor::randn(r, c, rng, 0.5), /*requires_grad=*/true);
}

}  // namespace

TEST(Autograd, BackwardRequiresScalar) {
  rt::Var v(rt::Tensor(2, 2, 1.0), true);
  EXPECT_THROW(v.backward(), std::logic_error);
}

TEST(Autograd, LeafGradientOfIdentityChain) {
  rt::Var x(rt::Tensor(1, 1, 3.0), true);
  rt::Var y = rt::scale(rt::add_scalar(x, 2.0), 4.0);  // y = 4(x+2)
  y.backward();
  EXPECT_DOUBLE_EQ(y.value().item(), 20.0);
  EXPECT_DOUBLE_EQ(x.grad()[0], 4.0);
}

TEST(Autograd, GradAccumulatesAcrossBackwardCalls) {
  rt::Var x(rt::Tensor(1, 1, 1.0), true);
  rt::Var y = rt::scale(x, 3.0);
  y.backward();
  y.backward();
  EXPECT_DOUBLE_EQ(x.grad()[0], 6.0);
  x.zero_grad();
  EXPECT_DOUBLE_EQ(x.grad()[0], 0.0);
}

TEST(Autograd, DiamondGraphSumsPaths) {
  // f = x*x + x*x reaches x through two paths.
  rt::Var x(rt::Tensor(1, 1, 5.0), true);
  rt::Var sq = rt::square(x);
  rt::Var f = rt::add(sq, sq);
  f.backward();
  EXPECT_DOUBLE_EQ(f.value().item(), 50.0);
  EXPECT_DOUBLE_EQ(x.grad()[0], 20.0);
}

TEST(Autograd, NoGradLeavesStayUntouched) {
  rt::Var x(rt::Tensor(1, 1, 2.0), false);
  rt::Var y(rt::Tensor(1, 1, 3.0), true);
  rt::Var f = rt::mul(x, y);
  f.backward();
  EXPECT_DOUBLE_EQ(y.grad()[0], 2.0);
  EXPECT_DOUBLE_EQ(x.grad().abs_max(), 0.0);
}

TEST(GradCheck, Matmul) {
  Rng rng(1);
  grad_check(
      [](std::vector<rt::Var>& v) {
        return rt::sum_all(rt::matmul(v[0], v[1]));
      },
      {leaf(3, 4, rng), leaf(4, 2, rng)});
}

TEST(GradCheck, AddSameShapeAndBroadcasts) {
  Rng rng(2);
  grad_check(
      [](std::vector<rt::Var>& v) {
        return rt::sum_all(rt::square(rt::add(v[0], v[1])));
      },
      {leaf(3, 3, rng), leaf(3, 3, rng)});
  grad_check(
      [](std::vector<rt::Var>& v) {
        return rt::sum_all(rt::square(rt::add(v[0], v[1])));
      },
      {leaf(3, 3, rng), leaf(1, 3, rng)});  // row broadcast
  grad_check(
      [](std::vector<rt::Var>& v) {
        return rt::sum_all(rt::square(rt::add(v[0], v[1])));
      },
      {leaf(3, 3, rng), leaf(1, 1, rng)});  // scalar broadcast
}

TEST(GradCheck, SubAndMul) {
  Rng rng(3);
  grad_check(
      [](std::vector<rt::Var>& v) {
        return rt::sum_all(rt::mul(rt::sub(v[0], v[1]), v[0]));
      },
      {leaf(2, 4, rng), leaf(2, 4, rng)});
  grad_check(
      [](std::vector<rt::Var>& v) {
        return rt::sum_all(rt::mul(v[0], v[1]));
      },
      {leaf(2, 4, rng), leaf(1, 1, rng)});  // scalar broadcast mul
}

TEST(GradCheck, Nonlinearities) {
  Rng rng(4);
  for (auto op : {&rt::tanh_op, &rt::sigmoid, &rt::exp_op}) {
    grad_check(
        [op](std::vector<rt::Var>& v) { return rt::sum_all(op(v[0])); },
        {leaf(3, 3, rng)});
  }
  grad_check(
      [](std::vector<rt::Var>& v) {
        return rt::sum_all(rt::leaky_relu(v[0], 0.1));
      },
      {leaf(3, 3, rng)});
}

TEST(GradCheck, LogOfPositive) {
  Rng rng(5);
  rt::Var x(rt::Tensor::rand_uniform(2, 3, rng, 0.5, 2.0), true);
  grad_check(
      [](std::vector<rt::Var>& v) { return rt::sum_all(rt::log_op(v[0])); },
      {x});
}

TEST(GradCheck, Reductions) {
  Rng rng(6);
  grad_check(
      [](std::vector<rt::Var>& v) { return rt::mean_all(rt::square(v[0])); },
      {leaf(4, 3, rng)});
  grad_check(
      [](std::vector<rt::Var>& v) {
        return rt::sum_all(rt::square(rt::mean_rows(v[0])));
      },
      {leaf(4, 3, rng)});
  grad_check(
      [](std::vector<rt::Var>& v) {
        return rt::sum_all(rt::square(rt::sum_rows(v[0])));
      },
      {leaf(4, 3, rng)});
}

TEST(GradCheck, MaxRows) {
  // Keep entries well separated so the finite-difference step cannot
  // change the argmax.
  rt::Var x(rt::Tensor::from_rows({{1.0, 8.0}, {5.0, 2.0}, {3.0, 4.0}}),
            true);
  grad_check(
      [](std::vector<rt::Var>& v) {
        return rt::sum_all(rt::square(rt::max_rows(v[0])));
      },
      {x});
}

TEST(GradCheck, ConcatAndSlice) {
  Rng rng(7);
  grad_check(
      [](std::vector<rt::Var>& v) {
        return rt::sum_all(rt::square(rt::concat_cols(v[0], v[1])));
      },
      {leaf(3, 2, rng), leaf(3, 4, rng)});
  grad_check(
      [](std::vector<rt::Var>& v) {
        return rt::sum_all(
            rt::square(rt::concat_rows({v[0], v[1], v[0]})));
      },
      {leaf(2, 3, rng), leaf(1, 3, rng)});
  grad_check(
      [](std::vector<rt::Var>& v) {
        return rt::sum_all(rt::square(rt::slice_rows(v[0], 1, 2)));
      },
      {leaf(4, 3, rng)});
}

TEST(GradCheck, GatherRowsWithDuplicates) {
  Rng rng(8);
  grad_check(
      [](std::vector<rt::Var>& v) {
        return rt::sum_all(rt::square(rt::gather_rows(v[0], {2, 0, 2})));
      },
      {leaf(3, 3, rng)});
}

TEST(GradCheck, Reshape) {
  Rng rng(9);
  grad_check(
      [](std::vector<rt::Var>& v) {
        return rt::sum_all(rt::square(rt::reshape(v[0], 1, 6)));
      },
      {leaf(3, 2, rng)});
}

TEST(GradCheck, SoftmaxAndLogSoftmax) {
  Rng rng(10);
  grad_check(
      [](std::vector<rt::Var>& v) {
        return rt::sum_all(rt::square(rt::softmax_row(v[0])));
      },
      {leaf(1, 5, rng)});
  grad_check(
      [](std::vector<rt::Var>& v) {
        return rt::sum_all(rt::square(rt::log_softmax_row(v[0])));
      },
      {leaf(1, 5, rng)});
}

TEST(GradCheck, PickMseEntropy) {
  Rng rng(11);
  grad_check(
      [](std::vector<rt::Var>& v) { return rt::pick(rt::square(v[0]), 1, 2); },
      {leaf(2, 3, rng)});
  grad_check(
      [](std::vector<rt::Var>& v) { return rt::mse(v[0], v[1]); },
      {leaf(3, 3, rng), leaf(3, 3, rng)});
  grad_check(
      [](std::vector<rt::Var>& v) {
        return rt::entropy_row(rt::softmax_row(v[0]));
      },
      {leaf(1, 4, rng)});
}

TEST(Softmax, SumsToOneAndIsStable) {
  rt::Var logits(rt::Tensor::from_rows({{1000.0, 1000.0, 999.0}}));
  auto p = rt::softmax_row(logits).value();
  EXPECT_NEAR(p.sum(), 1.0, 1e-12);
  EXPECT_GT(p[0], p[2]);
  EXPECT_NEAR(p[0], p[1], 1e-12);
}

TEST(LogSoftmax, MatchesLogOfSoftmax) {
  Rng rng(12);
  rt::Var logits(rt::Tensor::randn(1, 6, rng));
  auto p = rt::softmax_row(logits).value();
  auto lp = rt::log_softmax_row(logits).value();
  for (std::size_t i = 0; i < p.size(); ++i) {
    EXPECT_NEAR(lp[i], std::log(p[i]), 1e-10);
  }
}

TEST(GradCheck, ComposedNetworkLikeExpression) {
  // A miniature actor-critic style expression touching most ops at once.
  Rng rng(13);
  grad_check(
      [](std::vector<rt::Var>& v) {
        rt::Var h = rt::relu(rt::matmul(v[0], v[1]));
        rt::Var pooled = rt::mean_rows(h);
        rt::Var scores = rt::reshape(rt::matmul(h, v[2]), 1, 4);
        rt::Var logp = rt::log_softmax_row(scores);
        return rt::add(rt::pick(logp, 0, 1),
                       rt::mean_all(rt::square(pooled)));
      },
      {leaf(4, 3, rng), leaf(3, 5, rng), leaf(5, 1, rng)}, 1e-6, 1e-4);
}
