// Crash-safe checkpointing: atomic save/load roundtrips, kill-mid-write
// recovery (a stale .tmp must never shadow the last complete
// checkpoint), torn-file detection, and trainer-level --resume
// continuing exactly where the interrupted run stopped.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>

#include "dag/cholesky.hpp"
#include "nn/mlp.hpp"
#include "nn/serialize.hpp"
#include "rl/agent.hpp"
#include "rl/checkpoint.hpp"
#include "sim/cost_model.hpp"
#include "sim/platform.hpp"

namespace fs = std::filesystem;
namespace rd = readys::dag;
namespace rl = readys::rl;
namespace rn = readys::nn;
namespace rs = readys::sim;
using readys::util::Rng;

namespace {

/// Fresh (removed + unique) scratch directory under the system tmp dir.
std::string scratch_dir(const char* name) {
  const fs::path dir = fs::temp_directory_path() / name;
  fs::remove_all(dir);
  return dir.string();
}

bool same_parameters(rn::Module& a, rn::Module& b) {
  return rn::serialize_parameters(a) == rn::serialize_parameters(b);
}

}  // namespace

TEST(Checkpoint, SaveLoadRoundTrip) {
  const auto dir = scratch_dir("readys-ckpt-roundtrip");
  Rng rng1(1);
  Rng rng2(2);
  rn::Mlp a({4, 8, 2}, rng1);
  rn::Mlp b({4, 8, 2}, rng2);
  ASSERT_FALSE(same_parameters(a, b));

  rl::save_checkpoint(dir, a, {42, 7});
  rl::CheckpointState st;
  ASSERT_TRUE(rl::load_checkpoint(dir, b, st));
  EXPECT_EQ(st.episode, 42);
  EXPECT_EQ(st.updates, 7u);
  EXPECT_TRUE(same_parameters(a, b));
  // A successful save leaves no temporary behind.
  EXPECT_FALSE(fs::exists(rl::checkpoint_path(dir) + ".tmp"));
  fs::remove_all(dir);
}

TEST(Checkpoint, MissingCheckpointReturnsFalseAndTouchesNothing) {
  const auto dir = scratch_dir("readys-ckpt-missing");
  Rng rng(3);
  rn::Mlp m({3, 3}, rng);
  const auto before = rn::serialize_parameters(m);
  rl::CheckpointState st{5, 9};
  EXPECT_FALSE(rl::load_checkpoint(dir, m, st));
  EXPECT_EQ(st.episode, 5);
  EXPECT_EQ(st.updates, 9u);
  EXPECT_EQ(rn::serialize_parameters(m), before);
}

TEST(Checkpoint, PartialTmpFromKilledWriteIsIgnored) {
  // Simulates a kill mid-checkpoint: the previous complete checkpoint is
  // on disk and a torn .tmp sits next to it. Loading must restore the
  // complete one and never look at the .tmp.
  const auto dir = scratch_dir("readys-ckpt-killed");
  Rng rng1(4);
  Rng rng2(5);
  rn::Mlp a({4, 6, 2}, rng1);
  rn::Mlp b({4, 6, 2}, rng2);
  rl::save_checkpoint(dir, a, {10, 3});
  {
    std::ofstream tmp(rl::checkpoint_path(dir) + ".tmp");
    tmp << "readys-checkpoint v1\nepisode 99\nupd";  // torn mid-write
  }
  rl::CheckpointState st;
  ASSERT_TRUE(rl::load_checkpoint(dir, b, st));
  EXPECT_EQ(st.episode, 10);
  EXPECT_EQ(st.updates, 3u);
  EXPECT_TRUE(same_parameters(a, b));
  fs::remove_all(dir);
}

TEST(Checkpoint, OnlyTmpPresentCountsAsMissing) {
  const auto dir = scratch_dir("readys-ckpt-only-tmp");
  fs::create_directories(dir);
  {
    std::ofstream tmp(rl::checkpoint_path(dir) + ".tmp");
    tmp << "garbage";
  }
  Rng rng(6);
  rn::Mlp m({3, 3}, rng);
  rl::CheckpointState st;
  EXPECT_FALSE(rl::load_checkpoint(dir, m, st));
  fs::remove_all(dir);
}

TEST(Checkpoint, TornCheckpointFileThrows) {
  const auto dir = scratch_dir("readys-ckpt-torn");
  Rng rng1(7);
  rn::Mlp a({4, 6, 2}, rng1);
  rl::save_checkpoint(dir, a, {8, 2});
  // Truncate the real file to simulate disk corruption (NOT a torn
  // write — rename makes those impossible — but e.g. fs damage).
  const auto path = rl::checkpoint_path(dir);
  const auto full = fs::file_size(path);
  fs::resize_file(path, full / 2);
  Rng rng2(8);
  rn::Mlp b({4, 6, 2}, rng2);
  const auto before = rn::serialize_parameters(b);
  rl::CheckpointState st;
  EXPECT_THROW(rl::load_checkpoint(dir, b, st), std::runtime_error);
  // A corrupt checkpoint must not half-overwrite the module.
  EXPECT_EQ(rn::serialize_parameters(b), before);
  fs::remove_all(dir);
}

TEST(Checkpoint, BadMagicThrows) {
  const auto dir = scratch_dir("readys-ckpt-magic");
  fs::create_directories(dir);
  {
    std::ofstream out(rl::checkpoint_path(dir));
    out << "not-a-checkpoint\n";
  }
  Rng rng(9);
  rn::Mlp m({3, 3}, rng);
  rl::CheckpointState st;
  EXPECT_THROW(rl::load_checkpoint(dir, m, st), std::runtime_error);
  fs::remove_all(dir);
}

namespace {

rl::AgentConfig tiny_config(std::uint64_t seed) {
  rl::AgentConfig cfg;
  cfg.hidden = 8;
  cfg.window = 1;
  cfg.gcn_layers = 1;
  cfg.seed = seed;
  return cfg;
}

}  // namespace

TEST(Checkpoint, TrainerResumeContinuesFromLastCheckpoint) {
  // End-to-end --resume: a 4-episode run checkpoints, a fresh agent with
  // resume=true and an 8-episode budget trains only the remaining 4.
  const auto dir = scratch_dir("readys-ckpt-resume");
  const auto graph = rd::cholesky_graph(3);
  const auto costs = rs::CostModel::cholesky();
  const auto platform = rs::Platform::hybrid(1, 1);

  rl::TrainOptions first;
  first.episodes = 4;
  first.sigma = 0.0;
  first.seed = 3;
  first.checkpoint_dir = dir;
  first.checkpoint_every = 2;
  {
    rl::ReadysAgent agent(graph.num_kernel_types(), tiny_config(1));
    const auto report = agent.train(graph, platform, costs, first);
    EXPECT_EQ(report.start_episode, 0);
    EXPECT_EQ(report.episode_rewards.size(), 4u);
  }

  rl::TrainOptions second = first;
  second.episodes = 8;
  second.resume = true;
  rl::ReadysAgent resumed(graph.num_kernel_types(), tiny_config(2));
  const auto report = resumed.train(graph, platform, costs, second);
  EXPECT_EQ(report.start_episode, 4);
  EXPECT_EQ(report.episode_rewards.size(), 4u);

  // Resuming a finished run trains zero episodes and changes nothing.
  rl::ReadysAgent done(graph.num_kernel_types(), tiny_config(3));
  const auto noop = done.train(graph, platform, costs, second);
  EXPECT_EQ(noop.start_episode, 8);
  EXPECT_TRUE(noop.episode_rewards.empty());
  fs::remove_all(dir);
}
