// Crash-safe checkpointing, readys-ckpt/2 edition: full-state round
// trips (weights + optimizer + RNG streams + progress), CRC-guarded
// corruption detection with fallback to the newest valid retained file,
// last-K retention, stale-tmp hygiene, truncation fuzzing at every byte
// offset, legacy v1 migration, and trainer-level --resume that is
// bit-identical to the uninterrupted run.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "dag/cholesky.hpp"
#include "nn/mlp.hpp"
#include "nn/serialize.hpp"
#include "obs/obs.hpp"
#include "rl/agent.hpp"
#include "rl/checkpoint.hpp"
#include "sim/cost_model.hpp"
#include "sim/platform.hpp"

namespace fs = std::filesystem;
namespace rd = readys::dag;
namespace rl = readys::rl;
namespace rn = readys::nn;
namespace ro = readys::obs;
namespace rs = readys::sim;
using readys::util::Rng;

namespace {

/// Fresh (removed + unique) scratch directory under the system tmp dir.
std::string scratch_dir(const char* name) {
  const fs::path dir = fs::temp_directory_path() / name;
  fs::remove_all(dir);
  return dir.string();
}

bool same_parameters(rn::Module& a, rn::Module& b) {
  return rn::serialize_parameters(a) == rn::serialize_parameters(b);
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << content;
}

/// A representative CheckpointData carrying every field.
rl::CheckpointData sample_data() {
  rl::CheckpointData d;
  d.progress = {42, 7, 2, 1, 1};
  d.trainer = "a2c";
  d.env_seed = 99;
  d.num_envs = 4;
  Rng r(123);
  r.normal();  // populate the Box-Muller cache so it round-trips too
  d.rngs = {{"sample", r.state()}};
  d.optimizer = {"adam 3 0"};
  return d;
}

void expect_data_eq(const rl::CheckpointData& a, const rl::CheckpointData& b) {
  EXPECT_EQ(a.progress.episode, b.progress.episode);
  EXPECT_EQ(a.progress.updates, b.progress.updates);
  EXPECT_EQ(a.progress.skipped_updates, b.progress.skipped_updates);
  EXPECT_EQ(a.progress.rollbacks, b.progress.rollbacks);
  EXPECT_EQ(a.progress.divergent_streak, b.progress.divergent_streak);
  EXPECT_EQ(a.trainer, b.trainer);
  EXPECT_EQ(a.env_seed, b.env_seed);
  EXPECT_EQ(a.num_envs, b.num_envs);
  EXPECT_EQ(a.rngs, b.rngs);
  EXPECT_EQ(a.optimizer, b.optimizer);
  EXPECT_EQ(a.migrated_v1, b.migrated_v1);
}

}  // namespace

TEST(Checkpoint, SaveLoadRoundTripsEveryField) {
  const auto dir = scratch_dir("readys-ckpt-roundtrip");
  Rng rng1(1);
  Rng rng2(2);
  rn::Mlp a({4, 8, 2}, rng1);
  rn::Mlp b({4, 8, 2}, rng2);
  ASSERT_FALSE(same_parameters(a, b));

  const rl::CheckpointData saved = sample_data();
  rl::save_checkpoint(dir, a, saved);
  rl::CheckpointData loaded;
  ASSERT_TRUE(rl::load_checkpoint(dir, b, loaded));
  expect_data_eq(saved, loaded);
  EXPECT_TRUE(same_parameters(a, b));
  // Retained file + LATEST pointer; a successful save leaves no tmp.
  EXPECT_TRUE(fs::exists(rl::checkpoint_file_path(dir, 1)));
  EXPECT_EQ(read_file(rl::latest_pointer_path(dir)), "checkpoint.1.txt\n");
  EXPECT_FALSE(fs::exists(rl::checkpoint_file_path(dir, 1) + ".tmp"));
  EXPECT_FALSE(fs::exists(rl::latest_pointer_path(dir) + ".tmp"));
  fs::remove_all(dir);
}

TEST(Checkpoint, MissingCheckpointReturnsFalseAndTouchesNothing) {
  const auto dir = scratch_dir("readys-ckpt-missing");
  Rng rng(3);
  rn::Mlp m({3, 3}, rng);
  const auto before = rn::serialize_parameters(m);
  rl::CheckpointData d;
  d.progress = {5, 9, 0, 0, 0};
  EXPECT_FALSE(rl::load_checkpoint(dir, m, d));
  EXPECT_EQ(d.progress.episode, 5);
  EXPECT_EQ(d.progress.updates, 9u);
  EXPECT_EQ(rn::serialize_parameters(m), before);
}

TEST(Checkpoint, RetentionKeepsNewestKAndLatestTracksHead) {
  const auto dir = scratch_dir("readys-ckpt-retention");
  Rng rng(4);
  rn::Mlp m({3, 4, 2}, rng);
  rl::CheckpointData d = sample_data();
  for (int ep = 1; ep <= 5; ++ep) {
    d.progress.episode = ep;
    rl::save_checkpoint(dir, m, d, {/*retain=*/3});
  }
  EXPECT_FALSE(fs::exists(rl::checkpoint_file_path(dir, 1)));
  EXPECT_FALSE(fs::exists(rl::checkpoint_file_path(dir, 2)));
  EXPECT_TRUE(fs::exists(rl::checkpoint_file_path(dir, 3)));
  EXPECT_TRUE(fs::exists(rl::checkpoint_file_path(dir, 4)));
  EXPECT_TRUE(fs::exists(rl::checkpoint_file_path(dir, 5)));
  EXPECT_EQ(read_file(rl::latest_pointer_path(dir)), "checkpoint.5.txt\n");

  rl::CheckpointData loaded;
  ASSERT_TRUE(rl::load_checkpoint(dir, m, loaded));
  EXPECT_EQ(loaded.progress.episode, 5);
  fs::remove_all(dir);
}

TEST(Checkpoint, StaleTmpFromKilledWriteIsIgnoredAndRemoved) {
  // Simulates a kill mid-checkpoint: the previous complete checkpoint is
  // on disk and a torn .tmp sits next to it. Loading restores the
  // complete one; the next save sweeps the stale tmp.
  const auto dir = scratch_dir("readys-ckpt-killed");
  Rng rng1(5);
  Rng rng2(6);
  rn::Mlp a({4, 6, 2}, rng1);
  rn::Mlp b({4, 6, 2}, rng2);
  rl::CheckpointData d = sample_data();
  d.progress.episode = 10;
  rl::save_checkpoint(dir, a, d);
  const std::string stale = rl::checkpoint_file_path(dir, 2) + ".tmp";
  write_file(stale, "readys-ckpt/2\ntrainer a2c\nepisode 99\nupd");

  rl::CheckpointData loaded;
  ASSERT_TRUE(rl::load_checkpoint(dir, b, loaded));
  EXPECT_EQ(loaded.progress.episode, 10);
  EXPECT_TRUE(same_parameters(a, b));

  rl::save_checkpoint(dir, a, d);
  EXPECT_FALSE(fs::exists(stale));
  fs::remove_all(dir);
}

TEST(Checkpoint, OnlyTmpPresentCountsAsMissing) {
  const auto dir = scratch_dir("readys-ckpt-only-tmp");
  fs::create_directories(dir);
  write_file(rl::checkpoint_file_path(dir, 1) + ".tmp", "garbage");
  Rng rng(7);
  rn::Mlp m({3, 3}, rng);
  rl::CheckpointData d;
  EXPECT_FALSE(rl::load_checkpoint(dir, m, d));
  fs::remove_all(dir);
}

TEST(Checkpoint, BitFlippedLatestFallsBackToPreviousAndCountsMetric) {
  const auto dir = scratch_dir("readys-ckpt-bitflip");
  Rng rng1(8);
  Rng rng2(9);
  rn::Mlp a({4, 6, 2}, rng1);
  rn::Mlp b({4, 6, 2}, rng2);
  rl::CheckpointData d = sample_data();
  d.progress.episode = 1;
  rl::save_checkpoint(dir, a, d);
  const auto good = rn::serialize_parameters(a);
  // Second checkpoint with different weights, then flip one bit in it.
  a.parameters()[0].mutable_value()[0] += 1.0;
  d.progress.episode = 2;
  rl::save_checkpoint(dir, a, d);
  const std::string newest = rl::checkpoint_file_path(dir, 2);
  std::string blob = read_file(newest);
  blob[blob.size() / 2] = static_cast<char>(blob[blob.size() / 2] ^ 0x01);
  write_file(newest, blob);

  const bool installed = ro::install(ro::TelemetryConfig{});
  const std::uint64_t before =
      ro::telemetry() ? ro::telemetry()->ckpt_fallbacks.total() : 0;
  rl::CheckpointData loaded;
  ASSERT_TRUE(rl::load_checkpoint(dir, b, loaded));
  EXPECT_EQ(loaded.progress.episode, 1);  // the older, intact file
  EXPECT_EQ(rn::serialize_parameters(b), good);
  if (ro::telemetry() != nullptr) {
    EXPECT_GT(ro::telemetry()->ckpt_fallbacks.total(), before);
  }
  if (installed) ro::shutdown();
  fs::remove_all(dir);
}

TEST(Checkpoint, TruncatedLatestFallsBackToPrevious) {
  const auto dir = scratch_dir("readys-ckpt-truncated");
  Rng rng1(10);
  Rng rng2(11);
  rn::Mlp a({4, 6, 2}, rng1);
  rn::Mlp b({4, 6, 2}, rng2);
  rl::CheckpointData d = sample_data();
  d.progress.episode = 1;
  rl::save_checkpoint(dir, a, d);
  const auto good = rn::serialize_parameters(a);
  a.parameters()[0].mutable_value()[0] += 1.0;
  d.progress.episode = 2;
  rl::save_checkpoint(dir, a, d);
  const std::string newest = rl::checkpoint_file_path(dir, 2);
  fs::resize_file(newest, fs::file_size(newest) / 2);

  rl::CheckpointData loaded;
  ASSERT_TRUE(rl::load_checkpoint(dir, b, loaded));
  EXPECT_EQ(loaded.progress.episode, 1);
  EXPECT_EQ(rn::serialize_parameters(b), good);
  fs::remove_all(dir);
}

TEST(Checkpoint, AllFilesCorruptThrowsAndTouchesNothing) {
  const auto dir = scratch_dir("readys-ckpt-all-corrupt");
  Rng rng1(12);
  rn::Mlp a({4, 6, 2}, rng1);
  rl::CheckpointData d = sample_data();
  rl::save_checkpoint(dir, a, d);
  rl::save_checkpoint(dir, a, d);
  for (int i = 1; i <= 2; ++i) {
    const std::string p = rl::checkpoint_file_path(dir, i);
    fs::resize_file(p, fs::file_size(p) / 3);
  }
  Rng rng2(13);
  rn::Mlp b({4, 6, 2}, rng2);
  const auto before = rn::serialize_parameters(b);
  rl::CheckpointData loaded;
  EXPECT_THROW(rl::load_checkpoint(dir, b, loaded), std::runtime_error);
  EXPECT_EQ(rn::serialize_parameters(b), before);
  fs::remove_all(dir);
}

TEST(Checkpoint, EveryTruncationOffsetOfCheckpointBlobIsRejected) {
  Rng rng1(14);
  rn::Mlp a({3, 4, 2}, rng1);
  const std::string blob = rl::serialize_checkpoint(a, sample_data());
  Rng rng2(15);
  rn::Mlp b({3, 4, 2}, rng2);
  const auto pristine = rn::serialize_parameters(b);
  for (std::size_t len = 0; len < blob.size(); ++len) {
    rl::CheckpointData d;
    EXPECT_THROW(rl::deserialize_checkpoint(b, d, blob.substr(0, len)),
                 std::runtime_error)
        << "prefix of length " << len << " was accepted";
    EXPECT_EQ(rn::serialize_parameters(b), pristine)
        << "prefix of length " << len << " partially applied";
  }
  // The untruncated blob still loads, so the loop above proved rejection
  // rather than a broken serializer.
  rl::CheckpointData d;
  rl::deserialize_checkpoint(b, d, blob);
  EXPECT_TRUE(same_parameters(a, b));
}

TEST(Checkpoint, EveryTruncationOffsetOfWeightsBlobIsRejected) {
  Rng rng1(16);
  rn::Mlp a({3, 4, 2}, rng1);
  const std::string blob = rn::serialize_parameters(a);
  Rng rng2(17);
  rn::Mlp b({3, 4, 2}, rng2);
  const auto pristine = rn::serialize_parameters(b);
  for (std::size_t len = 0; len < blob.size(); ++len) {
    EXPECT_THROW(rn::deserialize_parameters(b, blob.substr(0, len)),
                 std::runtime_error)
        << "prefix of length " << len << " was accepted";
    EXPECT_EQ(rn::serialize_parameters(b), pristine)
        << "prefix of length " << len << " partially applied";
  }
  rn::deserialize_parameters(b, blob);
  EXPECT_TRUE(same_parameters(a, b));
}

TEST(Checkpoint, LegacyV1FileIsMigratedWithFreshOptimizerState) {
  const auto dir = scratch_dir("readys-ckpt-v1");
  fs::create_directories(dir);
  Rng rng1(18);
  Rng rng2(19);
  rn::Mlp a({4, 6, 2}, rng1);
  rn::Mlp b({4, 6, 2}, rng2);
  write_file(rl::checkpoint_path(dir), "readys-checkpoint v1\nepisode 12\n"
                                       "updates 34\n" +
                                           rn::serialize_parameters(a));
  rl::CheckpointData loaded;
  ASSERT_TRUE(rl::load_checkpoint(dir, b, loaded));
  EXPECT_TRUE(loaded.migrated_v1);
  EXPECT_EQ(loaded.progress.episode, 12);
  EXPECT_EQ(loaded.progress.updates, 34u);
  EXPECT_TRUE(loaded.rngs.empty());
  EXPECT_TRUE(loaded.optimizer.empty());
  EXPECT_TRUE(same_parameters(a, b));
  fs::remove_all(dir);
}

TEST(Checkpoint, UnrecognizedLegacyFileNamesBothVersions) {
  const auto dir = scratch_dir("readys-ckpt-badmagic");
  fs::create_directories(dir);
  write_file(rl::checkpoint_path(dir), "not-a-checkpoint\n");
  Rng rng(20);
  rn::Mlp m({3, 3}, rng);
  rl::CheckpointData loaded;
  try {
    rl::load_checkpoint(dir, m, loaded);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("readys-checkpoint v1"), std::string::npos) << msg;
    EXPECT_NE(msg.find("readys-ckpt/2"), std::string::npos) << msg;
  }
  fs::remove_all(dir);
}

TEST(Checkpoint, TrainerMismatchRefusesToResume) {
  rl::CheckpointData d = sample_data();
  d.trainer = "ppo";
  Rng rng(21);
  rn::Mlp m({2, 2}, rng);
  rn::Adam adam(m.parameters(), 0.01);
  Rng sample(22);
  EXPECT_THROW(
      rl::apply_checkpoint_to_trainer(d, "a2c", 99, 4, adam, sample),
      std::runtime_error);
}

namespace {

rl::AgentConfig tiny_config(std::uint64_t seed) {
  rl::AgentConfig cfg;
  cfg.hidden = 8;
  cfg.window = 1;
  cfg.gcn_layers = 1;
  cfg.seed = seed;
  // The bit-identity test below trains the first half as a 4-episode run
  // (not a killed 8-episode run), so the entropy anneal — a function of
  // opts.episodes — must not differ between the halves.
  cfg.entropy_decay = false;
  return cfg;
}

}  // namespace

TEST(Checkpoint, TrainerResumeContinuesFromLastCheckpoint) {
  // End-to-end --resume: a 4-episode run checkpoints, a fresh agent with
  // resume=true and an 8-episode budget trains only the remaining 4.
  const auto dir = scratch_dir("readys-ckpt-resume");
  const auto graph = rd::cholesky_graph(3);
  const auto costs = rs::CostModel::cholesky();
  const auto platform = rs::Platform::hybrid(1, 1);

  rl::TrainOptions first;
  first.episodes = 4;
  first.sigma = 0.0;
  first.seed = 3;
  first.checkpoint_dir = dir;
  first.checkpoint_every = 2;
  {
    rl::ReadysAgent agent(graph.num_kernel_types(), tiny_config(1));
    const auto report = agent.train(graph, platform, costs, first);
    EXPECT_EQ(report.start_episode, 0);
    EXPECT_EQ(report.episode_rewards.size(), 4u);
  }

  rl::TrainOptions second = first;
  second.episodes = 8;
  second.resume = true;
  rl::ReadysAgent resumed(graph.num_kernel_types(), tiny_config(2));
  const auto report = resumed.train(graph, platform, costs, second);
  EXPECT_EQ(report.start_episode, 4);
  EXPECT_EQ(report.episode_rewards.size(), 4u);

  // Resuming a finished run trains zero episodes and changes nothing.
  rl::ReadysAgent done(graph.num_kernel_types(), tiny_config(3));
  const auto noop = done.train(graph, platform, costs, second);
  EXPECT_EQ(noop.start_episode, 8);
  EXPECT_TRUE(noop.episode_rewards.empty());
  fs::remove_all(dir);
}

TEST(Checkpoint, ResumedRunIsBitIdenticalToUninterruptedRun) {
  // The whole point of full-state checkpoints: split a run at a
  // checkpoint boundary and the final weights match the one-shot run
  // bit for bit (same Adam moments, same sample stream, same env
  // reseeds).
  const auto graph = rd::cholesky_graph(3);
  const auto costs = rs::CostModel::cholesky();
  const auto platform = rs::Platform::hybrid(1, 1);

  const auto ref_dir = scratch_dir("readys-ckpt-bitid-ref");
  rl::TrainOptions full;
  full.episodes = 8;
  full.sigma = 0.0;
  full.seed = 5;
  full.checkpoint_dir = ref_dir;
  full.checkpoint_every = 2;
  rl::ReadysAgent reference(graph.num_kernel_types(), tiny_config(1));
  reference.train(graph, platform, costs, full);

  const auto dir = scratch_dir("readys-ckpt-bitid-split");
  rl::TrainOptions half = full;
  half.checkpoint_dir = dir;
  half.episodes = 4;
  {
    rl::ReadysAgent agent(graph.num_kernel_types(), tiny_config(1));
    agent.train(graph, platform, costs, half);
  }
  rl::TrainOptions rest = full;
  rest.checkpoint_dir = dir;
  rest.resume = true;
  // Different net seed: everything that matters must come from the file.
  rl::ReadysAgent resumed(graph.num_kernel_types(), tiny_config(9));
  resumed.train(graph, platform, costs, rest);

  EXPECT_EQ(rn::serialize_parameters(reference.net()),
            rn::serialize_parameters(resumed.net()));
  fs::remove_all(ref_dir);
  fs::remove_all(dir);
}
