#include <gtest/gtest.h>

#include "core/apps.hpp"
#include "dag/synthetic.hpp"
#include "sched/batch_mode.hpp"
#include "sim/simulator.hpp"

namespace rc = readys::core;
namespace rd = readys::dag;
namespace rs = readys::sim;
namespace rx = readys::sched;

namespace {

/// Two independent tasks with very different costs on a 2-resource node.
struct TwoTasks {
  rd::TaskGraph graph = [] {
    rd::TaskGraph g("two", {"SHORT", "LONG"});
    g.add_task(0);
    g.add_task(1);
    return g;
  }();
  rs::CostModel costs{"two", {{2.0, 4.0}, {20.0, 5.0}}};
  rs::Platform platform = rs::Platform::hybrid(1, 1);
};

double run(rx::BatchModeScheduler sched, const TwoTasks& fx) {
  rs::Simulator sim(fx.graph, fx.platform, fx.costs, {0.0, 1});
  return sim.run(sched).makespan;
}

}  // namespace

TEST(BatchMode, Names) {
  EXPECT_EQ(rx::make_olb().name(), "OLB");
  EXPECT_EQ(rx::make_min_min().name(), "MIN-MIN");
  EXPECT_EQ(rx::make_max_min().name(), "MAX-MIN");
  EXPECT_EQ(rx::make_sufferage().name(), "SUFFERAGE");
}

TEST(BatchMode, MinMinPicksShortTaskFirst) {
  TwoTasks fx;
  // Min-Min maps the SHORT task to its best resource (CPU, 2) first, then
  // LONG to the GPU (5): makespan 5.
  EXPECT_DOUBLE_EQ(run(rx::make_min_min(), fx), 5.0);
}

TEST(BatchMode, MaxMinPicksLongTaskFirst) {
  TwoTasks fx;
  // Max-Min maps LONG first to the GPU (5), then SHORT to the CPU (2):
  // also 5 here — but on a platform where both prefer the same resource
  // the orders diverge (checked below).
  EXPECT_DOUBLE_EQ(run(rx::make_max_min(), fx), 5.0);
}

TEST(BatchMode, MinMinVsMaxMinDivergeWhenCompetingForOneResource) {
  rd::TaskGraph g("pair", {"A", "B"});
  g.add_task(0);
  g.add_task(1);
  // Both tasks prefer the GPU; A is short (1 vs 10), B is long (5 vs 50).
  rs::CostModel costs("pair", {{10.0, 1.0}, {50.0, 5.0}});
  const auto p = rs::Platform::hybrid(1, 1);
  auto makespan = [&](rx::BatchModeScheduler sched) {
    rs::Simulator sim(g, p, costs, {0.0, 1});
    return sim.run(sched).makespan;
  };
  // Min-Min: A -> GPU (1); B must take CPU (50) or wait... B is mapped at
  // the same instant to the idle CPU: makespan 50.
  EXPECT_DOUBLE_EQ(makespan(rx::make_min_min()), 50.0);
  // Max-Min: B -> GPU (5); A -> CPU (10): makespan 10. Long-task-first
  // wins exactly as the classic taxonomy predicts.
  EXPECT_DOUBLE_EQ(makespan(rx::make_max_min()), 10.0);
}

TEST(BatchMode, SufferagePrioritizesTheTaskWithMostToLose) {
  rd::TaskGraph g("suffer", {"A", "B"});
  g.add_task(0);  // A: 10 on CPU, 9 on GPU  -> sufferage 1
  g.add_task(1);  // B: 100 on CPU, 5 on GPU -> sufferage 95
  rs::CostModel costs("suffer", {{10.0, 9.0}, {100.0, 5.0}});
  const auto p = rs::Platform::hybrid(1, 1);
  rx::BatchModeScheduler sched = rx::make_sufferage();
  rs::Simulator sim(g, p, costs, {0.0, 1});
  const auto result = sim.run(sched);
  // B must get the GPU: makespan max(10, 5) = 10, not max(9, 100).
  EXPECT_DOUBLE_EQ(result.makespan, 10.0);
}

TEST(BatchMode, AllRulesProduceValidSchedules) {
  for (auto rule :
       {rx::BatchModeScheduler::Rule::kOlb,
        rx::BatchModeScheduler::Rule::kMinMin,
        rx::BatchModeScheduler::Rule::kMaxMin,
        rx::BatchModeScheduler::Rule::kSufferage}) {
    for (auto app : {rc::App::kCholesky, rc::App::kLu, rc::App::kQr}) {
      const auto g = rc::make_graph(app, 5);
      const auto c = rc::make_costs(app);
      const auto p = rs::Platform::hybrid(2, 2);
      rx::BatchModeScheduler sched(rule);
      for (double sigma : {0.0, 0.5}) {
        rs::Simulator sim(g, p, c, {sigma, 3});
        const auto result = sim.run(sched);
        EXPECT_EQ(result.trace.validate(g, p), "")
            << sched.name() << " " << rc::app_name(app) << " s=" << sigma;
      }
    }
  }
}

TEST(BatchMode, HandlesIndependentTaskBags) {
  const auto g = rd::independent_tasks_graph(40);
  const auto c = rs::CostModel::cholesky();
  const auto p = rs::Platform::hybrid(2, 2);
  auto sched = rx::make_min_min();
  rs::Simulator sim(g, p, c, {0.0, 1});
  const auto result = sim.run(sched);
  EXPECT_EQ(result.trace.validate(g, p), "");
  // Load balancing must beat a single resource: strictly below serial GPU.
  double serial_gpu = 0.0;
  for (rd::TaskId t = 0; t < g.num_tasks(); ++t) {
    serial_gpu += c.expected(g.kernel(t), rs::ResourceType::kGpu);
  }
  EXPECT_LT(result.makespan, serial_gpu);
}
