#include "tensor/tensor.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace rt = readys::tensor;

TEST(Tensor, DefaultIsEmpty) {
  rt::Tensor t;
  EXPECT_EQ(t.rows(), 0u);
  EXPECT_EQ(t.cols(), 0u);
  EXPECT_TRUE(t.empty());
}

TEST(Tensor, ConstructFill) {
  rt::Tensor t(2, 3, 1.5);
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.cols(), 3u);
  EXPECT_EQ(t.size(), 6u);
  for (std::size_t i = 0; i < t.size(); ++i) EXPECT_DOUBLE_EQ(t[i], 1.5);
}

TEST(Tensor, FromRows) {
  auto t = rt::Tensor::from_rows({{1.0, 2.0}, {3.0, 4.0}});
  EXPECT_DOUBLE_EQ(t.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(t.at(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(t.at(1, 0), 3.0);
  EXPECT_DOUBLE_EQ(t.at(1, 1), 4.0);
}

TEST(Tensor, FromRowsRaggedThrows) {
  EXPECT_THROW(rt::Tensor::from_rows({{1.0}, {2.0, 3.0}}),
               std::invalid_argument);
}

TEST(Tensor, RowVector) {
  auto t = rt::Tensor::row({1.0, 2.0, 3.0});
  EXPECT_EQ(t.rows(), 1u);
  EXPECT_EQ(t.cols(), 3u);
  EXPECT_DOUBLE_EQ(t[2], 3.0);
}

TEST(Tensor, Eye) {
  auto t = rt::Tensor::eye(3);
  EXPECT_DOUBLE_EQ(t.at(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(t.at(0, 2), 0.0);
  EXPECT_DOUBLE_EQ(t.sum(), 3.0);
}

TEST(Tensor, ItemRequiresScalar) {
  rt::Tensor s(1, 1, 4.0);
  EXPECT_DOUBLE_EQ(s.item(), 4.0);
  rt::Tensor m(2, 2);
  EXPECT_THROW(m.item(), std::logic_error);
}

TEST(Tensor, AddInPlace) {
  rt::Tensor a(2, 2, 1.0);
  rt::Tensor b(2, 2, 2.0);
  a.add_(b);
  EXPECT_DOUBLE_EQ(a.at(0, 0), 3.0);
  rt::Tensor c(1, 2);
  EXPECT_THROW(a.add_(c), std::invalid_argument);
}

TEST(Tensor, ScaleSumNorm) {
  auto t = rt::Tensor::from_rows({{3.0, 4.0}});
  EXPECT_DOUBLE_EQ(t.norm(), 5.0);
  EXPECT_DOUBLE_EQ(t.sum(), 7.0);
  t.scale_(2.0);
  EXPECT_DOUBLE_EQ(t.at(0, 1), 8.0);
  EXPECT_DOUBLE_EQ(t.abs_max(), 8.0);
}

TEST(Tensor, RandnIsSeeded) {
  readys::util::Rng r1(42);
  readys::util::Rng r2(42);
  auto a = rt::Tensor::randn(4, 4, r1);
  auto b = rt::Tensor::randn(4, 4, r2);
  EXPECT_TRUE(a == b);
}

TEST(Tensor, MatmulValueIdentity) {
  auto a = rt::Tensor::from_rows({{1.0, 2.0}, {3.0, 4.0}});
  auto out = rt::matmul_value(a, rt::Tensor::eye(2));
  EXPECT_TRUE(out == a);
}

TEST(Tensor, MatmulValueKnownProduct) {
  auto a = rt::Tensor::from_rows({{1.0, 2.0, 3.0}});
  auto b = rt::Tensor::from_rows({{1.0}, {10.0}, {100.0}});
  auto out = rt::matmul_value(a, b);
  EXPECT_EQ(out.rows(), 1u);
  EXPECT_EQ(out.cols(), 1u);
  EXPECT_DOUBLE_EQ(out[0], 321.0);
}

TEST(Tensor, MatmulValueShapeMismatchThrows) {
  rt::Tensor a(2, 3);
  rt::Tensor b(2, 3);
  EXPECT_THROW(rt::matmul_value(a, b), std::invalid_argument);
}
